//! Scheduler configuration: per-tenant weights, token-bucket rates, and
//! backlog bounds, loadable from a small TOML file.
//!
//! The parser speaks exactly the subset `--sched-config` files need —
//! `[section]` / `[tenants.name]` headers, `key = value` lines with
//! integer, float, and boolean values, `#` comments — in the same
//! dependency-light spirit as the `cn-obs` schema validator. Anything
//! outside that subset is a typed [`ConfigError`], never a silent
//! default.
//!
//! ```toml
//! # Fair-share policy for the notebook service.
//! [defaults]
//! weight = 1
//! rate = 2.0      # admissions per second (omit for unlimited)
//! burst = 5.0     # bucket capacity
//! max_queued = 16
//!
//! [tenants.analytics]
//! weight = 4      # 4x the dispatch share of a default tenant
//! rate = 50.0
//! burst = 100.0
//!
//! [tenants.crawler]
//! weight = 1
//! rate = 0.5
//! burst = 2.0
//! ```

use std::collections::BTreeMap;

/// The admission and dispatch policy of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Deficit-round-robin weight: the tenant's share of dispatch slots
    /// relative to other tenants of the same priority class. Clamped to
    /// at least 1.
    pub weight: u64,
    /// Token-bucket refill rate in admissions per second; `None`
    /// disables rate limiting for the tenant entirely.
    pub rate: Option<f64>,
    /// Token-bucket capacity (the burst a quiet tenant may submit at
    /// once). Only meaningful with a `rate`.
    pub burst: f64,
    /// Most jobs the tenant may have waiting (both classes combined)
    /// before submissions bounce with a queue-full rejection.
    pub max_queued: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig { weight: 1, rate: None, burst: 1.0, max_queued: 16 }
    }
}

/// The whole scheduler policy: a default profile plus per-tenant
/// overrides. Tenants never named in the file run under `defaults`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedConfig {
    /// Profile applied to any tenant without an explicit entry.
    pub defaults: TenantConfig,
    /// Per-tenant overrides, keyed by the `X-CN-Tenant` value.
    pub tenants: BTreeMap<String, TenantConfig>,
}

impl SchedConfig {
    /// A policy with no per-tenant overrides and the given backlog bound
    /// — the storeless, header-less server reduces to exactly the old
    /// bounded FIFO under this config.
    pub fn single_queue(max_queued: usize) -> SchedConfig {
        SchedConfig {
            defaults: TenantConfig { max_queued, ..TenantConfig::default() },
            tenants: BTreeMap::new(),
        }
    }

    /// The effective profile of `tenant`.
    pub fn tenant(&self, tenant: &str) -> &TenantConfig {
        self.tenants.get(tenant).unwrap_or(&self.defaults)
    }

    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    /// [`ConfigError`] with the offending line for anything malformed:
    /// unknown keys, non-numeric values, duplicate tenants, or a
    /// non-positive rate/burst (which would make refill math undefined).
    pub fn parse_toml(text: &str) -> Result<SchedConfig, ConfigError> {
        enum Section {
            None,
            Defaults,
            Tenant(String),
        }
        let mut config = SchedConfig::default();
        let mut section = Section::None;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                section = match header.split_once('.') {
                    None if header == "defaults" => {
                        // Tenant sections snapshot the defaults at their
                        // header line, so defaults edited afterwards
                        // would silently not apply — forbid the order.
                        if !config.tenants.is_empty() {
                            return Err(ConfigError::new(
                                line_no,
                                "[defaults] must precede every [tenants.*] section",
                            ));
                        }
                        Section::Defaults
                    }
                    Some(("tenants", name)) => {
                        let name = name.trim().trim_matches('"').to_string();
                        if name.is_empty() {
                            return Err(ConfigError::new(line_no, "empty tenant name"));
                        }
                        if config.tenants.contains_key(&name) {
                            return Err(ConfigError::new(
                                line_no,
                                format!("duplicate tenant `{name}`"),
                            ));
                        }
                        config.tenants.insert(name.clone(), config.defaults.clone());
                        Section::Tenant(name)
                    }
                    _ => {
                        return Err(ConfigError::new(
                            line_no,
                            format!(
                            "unknown section `[{header}]` (expected [defaults] or [tenants.NAME])"
                        ),
                        ))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::new(
                    line_no,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            let target = match &section {
                Section::None => {
                    return Err(ConfigError::new(
                        line_no,
                        format!(
                            "`{key}` outside any section (start with [defaults] or [tenants.NAME])"
                        ),
                    ))
                }
                Section::Defaults => &mut config.defaults,
                Section::Tenant(name) => {
                    config.tenants.get_mut(name).expect("tenant inserted at its header")
                }
            };
            apply_key(target, key, value, line_no)?;
        }
        Ok(config)
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn apply_key(
    target: &mut TenantConfig,
    key: &str,
    value: &str,
    line_no: usize,
) -> Result<(), ConfigError> {
    let int = |v: &str| -> Result<u64, ConfigError> {
        v.parse().map_err(|_| ConfigError::new(line_no, format!("`{key}` must be an integer")))
    };
    let float = |v: &str| -> Result<f64, ConfigError> {
        let f: f64 = v
            .parse()
            .map_err(|_| ConfigError::new(line_no, format!("`{key}` must be a number")))?;
        if !f.is_finite() || f <= 0.0 {
            return Err(ConfigError::new(line_no, format!("`{key}` must be a positive number")));
        }
        Ok(f)
    };
    match key {
        "weight" => target.weight = int(value)?.max(1),
        "rate" => target.rate = Some(float(value)?),
        "burst" => target.burst = float(value)?,
        "max_queued" => target.max_queued = int(value)?.max(1) as usize,
        other => {
            return Err(ConfigError::new(
                line_no,
                format!("unknown key `{other}` (expected weight, rate, burst, or max_queued)"),
            ))
        }
    }
    Ok(())
}

/// A malformed `--sched-config` file, with the line it failed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl ConfigError {
    fn new(line: usize, message: impl Into<String>) -> ConfigError {
        ConfigError { line, message: message.into() }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sched config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_tenants() {
        let config = SchedConfig::parse_toml(
            r#"
            # policy
            [defaults]
            weight = 1
            max_queued = 8

            [tenants.analytics]
            weight = 4          # heavy hitter
            rate = 50.0
            burst = 100.0

            [tenants."crawler"]
            rate = 0.5
            burst = 2.0
            "#,
        )
        .unwrap();
        assert_eq!(config.defaults.weight, 1);
        assert_eq!(config.defaults.max_queued, 8);
        assert_eq!(config.defaults.rate, None);
        let analytics = config.tenant("analytics");
        assert_eq!(analytics.weight, 4);
        assert_eq!(analytics.rate, Some(50.0));
        assert_eq!(analytics.burst, 100.0);
        // Tenant sections inherit the defaults parsed before them.
        let crawler = config.tenant("crawler");
        assert_eq!(crawler.weight, 1);
        assert_eq!(crawler.max_queued, 8);
        assert_eq!(crawler.rate, Some(0.5));
        // Unknown tenants fall back to the default profile.
        assert_eq!(config.tenant("nobody"), &config.defaults);
    }

    #[test]
    fn malformed_files_are_typed_errors_with_line_numbers() {
        for (text, needle) in [
            ("weight = 1", "outside any section"),
            ("[nope]\nweight = 1", "unknown section"),
            ("[defaults]\nweight", "key = value"),
            ("[defaults]\nweight = x", "integer"),
            ("[defaults]\nrate = -1.0", "positive"),
            ("[defaults]\nrate = banana", "number"),
            ("[defaults]\nshiny = 1", "unknown key"),
            ("[tenants.a]\n[tenants.a]", "duplicate"),
            ("[tenants.]", "empty tenant name"),
            ("[tenants.a]\n[defaults]", "precede"),
        ] {
            let err = SchedConfig::parse_toml(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?} -> {err}");
        }
        // Errors carry the offending line, not line 1.
        let err = SchedConfig::parse_toml("[defaults]\n\nrate = x").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn single_queue_mirrors_the_legacy_fifo() {
        let config = SchedConfig::single_queue(5);
        assert!(config.tenants.is_empty());
        assert_eq!(config.defaults.max_queued, 5);
        assert_eq!(config.defaults.rate, None, "no rate limiting without a config file");
    }

    #[test]
    fn weights_and_bounds_clamp_to_one() {
        let config = SchedConfig::parse_toml("[defaults]\nweight = 0\nmax_queued = 0").unwrap();
        assert_eq!(config.defaults.weight, 1);
        assert_eq!(config.defaults.max_queued, 1);
    }
}
