//! The scheduler's injectable time source.
//!
//! Every time-dependent decision the scheduler makes — token-bucket
//! refill, deadline shedding, queue-wait measurement — reads this trait
//! instead of `Instant::now()`, so fairness and starvation properties
//! can be pinned bit-exactly in tests with a [`ManualClock`] while
//! production runs on the monotonic [`SystemClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond counter. Implementations must never go
/// backwards; the origin is arbitrary (the scheduler only differences
/// readings).
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch.
    fn now_us(&self) -> u64;
}

/// Wall-clock time, anchored at construction.
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// the test calls [`ManualClock::advance_us`].
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero.
    pub fn new() -> ManualClock {
        ManualClock { now: AtomicU64::new(0) }
    }

    /// A clock stopped at `us`.
    pub fn at(us: u64) -> ManualClock {
        ManualClock { now: AtomicU64::new(us) }
    }

    /// Moves time forward by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_us(5);
        c.advance_us(7);
        assert_eq!(c.now_us(), 12);
        let c = ManualClock::at(100);
        assert_eq!(c.now_us(), 100);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
