//! Deterministic pins of the scheduler's contract, all under a
//! [`ManualClock`] so every assertion is bit-exact: DRR fairness under a
//! saturating tenant, priority-class ordering, token-bucket admission
//! and its `Retry-After` math, deadline shedding, and single-flight
//! coalescing.

use cn_sched::{
    Admitted, Class, JobMeta, ManualClock, Rejection, SchedConfig, Scheduler, TenantConfig,
};

fn sched(config: SchedConfig) -> Scheduler<u32, ManualClock> {
    Scheduler::new(config, ManualClock::new())
}

fn unlimited(max_queued: usize) -> SchedConfig {
    SchedConfig::single_queue(max_queued)
}

/// Drains everything currently queued, returning (tenant, item) in
/// dispatch order and finishing each job immediately.
fn drain(s: &Scheduler<u32, ManualClock>) -> Vec<(String, u32)> {
    let mut order = Vec::new();
    while let Some(d) = s.try_pop() {
        assert!(!d.expired);
        order.push((d.tenant.clone(), d.item));
        s.finish(d.coalesce_key, d.expired);
    }
    order
}

#[test]
fn fifo_within_a_single_tenant() {
    let s = sched(unlimited(16));
    for i in 0..5u32 {
        s.submit(i, &JobMeta::interactive("default")).unwrap();
    }
    let order: Vec<u32> = drain(&s).into_iter().map(|(_, i)| i).collect();
    assert_eq!(order, vec![0, 1, 2, 3, 4]);
}

/// The headline fairness pin: tenant `batchy` saturates the queue with
/// 20 jobs before `alice` (equal weight) submits 5. Under the old FIFO
/// alice would wait behind all 20; under DRR she gets every other
/// dispatch slot, so all 5 of her jobs complete within her first 10
/// slots — bounded, deterministic interleaving.
#[test]
fn equal_weight_tenants_share_dispatch_slots_alternately() {
    let s = sched(unlimited(64));
    for i in 0..20u32 {
        s.submit(i, &JobMeta::interactive("batchy")).unwrap();
    }
    for i in 100..105u32 {
        s.submit(i, &JobMeta::interactive("alice")).unwrap();
    }
    let order = drain(&s);
    let alice_done_at =
        order.iter().enumerate().filter(|(_, (t, _))| t == "alice").map(|(i, _)| i).max().unwrap();
    assert!(
        alice_done_at < 10,
        "alice's 5 jobs must finish within 10 dispatch slots, last at {alice_done_at}: {order:?}"
    );
    // And the interleaving itself is deterministic: strict alternation
    // (sorted tenant order, weight 1 each) until alice drains.
    let tenants: Vec<&str> = order.iter().take(10).map(|(t, _)| t.as_str()).collect();
    assert_eq!(
        tenants,
        vec![
            "alice", "batchy", "alice", "batchy", "alice", "batchy", "alice", "batchy", "alice",
            "batchy"
        ]
    );
}

/// A weight-3 tenant receives three dispatch slots for every one of a
/// weight-1 tenant while both stay backlogged.
#[test]
fn weights_skew_the_dispatch_ratio() {
    let mut config = unlimited(64);
    config.tenants.insert("heavy".into(), TenantConfig { weight: 3, ..config.defaults.clone() });
    let s = sched(config);
    for i in 0..9u32 {
        s.submit(i, &JobMeta::interactive("heavy")).unwrap();
    }
    for i in 100..103u32 {
        s.submit(i, &JobMeta::interactive("light")).unwrap();
    }
    let order = drain(&s);
    let tenants: Vec<&str> = order.iter().take(8).map(|(t, _)| t.as_str()).collect();
    // Circular scan starts at `heavy` (first in sorted order with work):
    // 3 serves, then light's 1, repeating.
    assert_eq!(
        tenants,
        vec!["heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"]
    );
}

/// Every queued interactive job dispatches before any batch job, across
/// tenants — but an already-dispatched batch job is never recalled
/// (dispatch-order preemption only).
#[test]
fn interactive_class_preempts_batch_in_dispatch_order() {
    let s = sched(unlimited(64));
    s.submit(0, &JobMeta::batch("a")).unwrap();
    let running = s.try_pop().unwrap();
    assert_eq!(running.class, Class::Batch);
    // Batch job 0 is now "running"; later interactive arrivals cannot
    // recall it, but they beat every *queued* batch job.
    s.submit(1, &JobMeta::batch("a")).unwrap();
    s.submit(2, &JobMeta::interactive("b")).unwrap();
    s.submit(3, &JobMeta::interactive("a")).unwrap();
    let order: Vec<(String, u32)> = drain(&s);
    assert_eq!(order, vec![("a".to_string(), 3), ("b".to_string(), 2), ("a".to_string(), 1)]);
    s.finish(running.coalesce_key, false);
    assert_eq!(s.inflight(), 0);
}

#[test]
fn token_bucket_rejects_with_retry_after_derived_from_refill_math() {
    let config = SchedConfig {
        defaults: TenantConfig {
            rate: Some(0.5), // one token every 2 seconds
            burst: 2.0,
            ..TenantConfig::default()
        },
        ..SchedConfig::default()
    };
    let s = sched(config);
    let meta = JobMeta::interactive("t");
    // The bucket starts full at burst: 2 admissions pass.
    assert_eq!(s.submit(1, &meta), Ok(Admitted::Queued));
    assert_eq!(s.submit(2, &meta), Ok(Admitted::Queued));
    // Empty bucket: retry_after = ceil((1 - 0 tokens) / 0.5/s) = 2s.
    assert_eq!(s.submit(3, &meta), Err(Rejection::RateLimited { retry_after_secs: 2 }));
    assert_eq!(s.totals().rejected_rate, 1);
    // Advance exactly the advertised wait: the client is admitted.
    s.clock().advance_us(2_000_000);
    assert_eq!(s.submit(3, &meta), Ok(Admitted::Queued));
    // Half a token accrued after 1s: still rejected, now only 1s away.
    s.clock().advance_us(1_000_000);
    assert_eq!(s.submit(4, &meta), Err(Rejection::RateLimited { retry_after_secs: 1 }));
}

#[test]
fn refill_never_exceeds_burst() {
    let config = SchedConfig {
        defaults: TenantConfig { rate: Some(10.0), burst: 3.0, ..TenantConfig::default() },
        ..SchedConfig::default()
    };
    let s = sched(config);
    let meta = JobMeta::interactive("t");
    // An hour idle refills to burst (3), not rate * 3600.
    s.clock().advance_us(3_600_000_000);
    for i in 0..3u32 {
        assert_eq!(s.submit(i, &meta), Ok(Admitted::Queued), "admission {i}");
    }
    assert!(matches!(s.submit(9, &meta), Err(Rejection::RateLimited { .. })));
}

#[test]
fn backlog_bound_rejects_queue_full_per_tenant() {
    let s = sched(unlimited(2));
    let meta = JobMeta::interactive("t");
    s.submit(1, &meta).unwrap();
    s.submit(2, &meta).unwrap();
    assert_eq!(s.submit(3, &meta), Err(Rejection::QueueFull));
    assert_eq!(s.totals().rejected_full, 1);
    // The bound is per tenant: another tenant still has room.
    assert_eq!(s.submit(4, &JobMeta::interactive("u")), Ok(Admitted::Queued));
}

#[test]
fn expired_jobs_are_shed_at_dispatch_not_run() {
    let s = sched(unlimited(16));
    let meta = JobMeta { deadline_us: Some(1_000), ..JobMeta::interactive("t") };
    s.submit(1, &meta).unwrap();
    s.submit(2, &JobMeta::interactive("t")).unwrap();
    s.clock().advance_us(2_000);
    // The expired head comes back flagged, charged to no one.
    let d = s.try_pop().unwrap();
    assert!(d.expired);
    assert_eq!(d.item, 1);
    s.finish(d.coalesce_key, d.expired);
    assert_eq!(s.inflight(), 0, "shed jobs never count as in-flight");
    // The deadline-less job behind it dispatches normally.
    let d = s.try_pop().unwrap();
    assert!(!d.expired);
    assert_eq!(d.item, 2);
    let totals = s.totals();
    assert_eq!((totals.shed_expired, totals.dispatched), (1, 1));
}

#[test]
fn coalescing_runs_one_leader_and_returns_followers_at_finish() {
    let s = sched(unlimited(16));
    let meta = JobMeta { coalesce_key: Some(42), ..JobMeta::interactive("t") };
    assert_eq!(s.submit(1, &meta), Ok(Admitted::Queued));
    assert_eq!(s.submit(2, &meta), Ok(Admitted::Coalesced));
    assert_eq!(s.submit(3, &meta), Ok(Admitted::Coalesced));
    // Followers hold no queue slot: only the leader dispatches.
    assert_eq!(s.queued_len(), 1);
    let d = s.try_pop().unwrap();
    assert_eq!(d.item, 1);
    assert!(s.try_pop().is_none());
    // A submission while the leader is *running* still coalesces — the
    // single-flight window spans queued and in-flight.
    assert_eq!(s.submit(4, &meta), Ok(Admitted::Coalesced));
    let followers = s.finish(d.coalesce_key, false);
    assert_eq!(followers, vec![2, 3, 4]);
    assert_eq!(s.totals().coalesced, 3);
    // The window closed at finish: the same key now queues a new leader.
    assert_eq!(s.submit(5, &meta), Ok(Admitted::Queued));
}

#[test]
fn coalescing_followers_consume_no_tokens() {
    let config = SchedConfig {
        defaults: TenantConfig { rate: Some(1.0), burst: 1.0, ..TenantConfig::default() },
        ..SchedConfig::default()
    };
    let s = sched(config);
    let meta = JobMeta { coalesce_key: Some(7), ..JobMeta::interactive("t") };
    assert_eq!(s.submit(1, &meta), Ok(Admitted::Queued));
    // The bucket is now empty, but followers ride the leader's token.
    assert_eq!(s.submit(2, &meta), Ok(Admitted::Coalesced));
    assert_eq!(s.submit(3, &meta), Ok(Admitted::Coalesced));
    // A *different* request from the same tenant is still rate-limited.
    assert!(matches!(s.submit(4, &JobMeta::interactive("t")), Err(Rejection::RateLimited { .. })));
}

#[test]
fn close_stops_admission_and_drains_the_backlog() {
    let s = sched(unlimited(16));
    s.submit(1, &JobMeta::interactive("t")).unwrap();
    s.close();
    assert_eq!(s.submit(2, &JobMeta::interactive("t")), Err(Rejection::Closed));
    // pop() still hands out what was queued, then reports drained.
    assert_eq!(s.pop().map(|d| d.item), Some(1));
    assert!(s.pop().is_none());
}

#[test]
fn pop_blocks_until_a_submission_arrives() {
    use std::sync::Arc;
    let s = Arc::new(sched(unlimited(16)));
    let consumer = {
        let s = Arc::clone(&s);
        std::thread::spawn(move || s.pop().map(|d| d.item))
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    s.submit(9, &JobMeta::interactive("t")).unwrap();
    assert_eq!(consumer.join().unwrap(), Some(9));
}

#[test]
fn wait_time_is_measured_on_the_injected_clock() {
    let s = sched(unlimited(16));
    s.submit(1, &JobMeta::interactive("t")).unwrap();
    s.clock().advance_us(1234);
    assert_eq!(s.try_pop().unwrap().wait_us, 1234);
}

#[test]
fn snapshot_reports_tenants_and_totals() {
    let mut config = unlimited(16);
    config.tenants.insert(
        "limited".into(),
        TenantConfig { rate: Some(2.0), burst: 4.0, weight: 2, max_queued: 16 },
    );
    let s = sched(config);
    s.submit(1, &JobMeta::interactive("limited")).unwrap();
    s.submit(2, &JobMeta::batch("limited")).unwrap();
    s.submit(3, &JobMeta::interactive("free")).unwrap();
    let d = s.try_pop().unwrap();
    assert_eq!(d.tenant, "free", "the scan starts at the first sorted tenant with work");
    let snap = s.snapshot();
    assert_eq!(snap.queued, 2);
    assert_eq!(snap.inflight, 1);
    assert_eq!(snap.totals.dispatched, 1);
    // BTreeMap keeps tenants sorted for a stable wire order.
    let names: Vec<&str> = snap.tenants.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names, vec!["free", "limited"]);
    let limited = &snap.tenants[1];
    assert_eq!(limited.weight, 2);
    assert_eq!(limited.rate, Some(2.0));
    assert_eq!(limited.queued, [1, 1], "limited's jobs are still queued, one per class");
    assert_eq!(limited.tokens, 2.0, "burst 4 minus two admissions");
    s.finish(d.coalesce_key, false);
    assert_eq!(s.snapshot().inflight, 0);
}
