//! End-to-end service tests over a real socket: concurrent generation
//! against the cached catalog, admission-control overflow, deadline
//! cancellation, and `/metrics` schema validity.

use cn_serve::{start, Catalog, DatasetSpec, Handle, Registry, ServeConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn covid_csv() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../data/covid_sample.csv")
}

fn schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/metrics.schema.json")
}

fn error_schema() -> Value {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/api_error.schema.json");
    serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap()
}

/// Every 4xx/5xx body must be a versioned envelope that validates
/// against `schemas/api_error.schema.json`; returns its request id.
fn assert_envelope(body: &Value, code: &str) -> u64 {
    if let Err(violations) = cn_obs::schema::validate(body, &error_schema()) {
        panic!("error body violates api_error.schema.json: {violations:?}\nbody: {body}");
    }
    assert_eq!(body["error"]["code"].as_str().unwrap(), code, "body: {body}");
    body["error"]["request_id"].as_u64().unwrap()
}

fn test_server(queue_depth: usize, pipeline_workers: usize) -> Handle {
    let registry = Arc::new(Registry::new());
    let mut catalog = Catalog::new(4, registry);
    catalog.register(DatasetSpec {
        name: "covid".to_string(),
        path: covid_csv(),
        measures: None,
        ignore: Vec::new(),
    });
    let config =
        ServeConfig { http_workers: 8, pipeline_workers, queue_depth, ..ServeConfig::default() };
    start(config, catalog).expect("bind an ephemeral port")
}

/// Minimal HTTP client: one request, `Connection: close` response.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .filter(|b| !b.is_empty())
        .and_then(|b| serde_json::from_str(b).ok())
        .unwrap_or(Value::Null);
    (status, json_body)
}

#[test]
fn concurrent_generation_over_a_cached_catalog() {
    let handle = test_server(32, 2);
    let addr = handle.addr();

    let (status, health) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(health["status"], "ok");

    let (status, datasets) = request(addr, "GET", "/v1/datasets", None);
    assert_eq!(status, 200);
    assert_eq!(datasets["datasets"][0]["name"], "covid");
    assert_eq!(datasets["datasets"][0]["loaded"], false, "nothing loaded yet");

    // Eight concurrent generation requests over the same dataset.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            thread::spawn(move || {
                request(
                    addr,
                    "POST",
                    "/v1/notebooks",
                    Some(&format!(r#"{{"dataset":"covid","len":3,"perms":99,"seed":{i}}}"#)),
                )
            })
        })
        .collect();
    let results: Vec<(u16, Value)> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (status, body) in &results {
        assert_eq!(*status, 200, "generation failed: {body:?}");
        assert_eq!(body["status"], "done");
        assert!(body["entries"].as_u64().unwrap() > 0);
        assert!(body["markdown"].as_str().unwrap().contains("Comparison notebook"));
    }

    // The catalog parsed the CSV once; every other lookup was a hit.
    let report = handle.registry().report();
    assert_eq!(report.counter("catalog_misses"), 1, "exactly one cold CSV parse");
    assert_eq!(report.counter("catalog_hits"), 7, "seven warm lookups");
    assert_eq!(report.counter("jobs_completed"), 8);
    assert!(report.counter("tests_performed") > 0, "per-request registries merged");

    // A finished job is retrievable, and its session serves continuations.
    let id = results[0].1["id"].as_u64().unwrap();
    let (status, body) = request(addr, "GET", &format!("/v1/notebooks/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(body["status"], "done");
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/sessions/{id}/continue"),
        Some(r#"{"anchor":0,"k":2}"#),
    );
    assert_eq!(status, 200, "continuation failed: {body:?}");
    assert!(!body["suggestions"].as_array().unwrap().is_empty());
    assert!(body["markdown"].as_str().unwrap().contains("Continuation"));

    // Unknown datasets and unknown jobs are typed 404 envelopes.
    let (status, body) = request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"nope"}"#));
    assert_eq!(status, 404);
    let missing_dataset_id = assert_envelope(&body, "dataset_not_found");
    let (status, body) = request(addr, "GET", "/v1/notebooks/99999", None);
    assert_eq!(status, 404);
    assert_envelope(&body, "not_found");

    // /metrics validates against the repository schema, and the failed
    // request's id appears as a `request` span value in the span tree.
    let (status, metrics) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let schema_text = std::fs::read_to_string(schema_path()).unwrap();
    let schema: Value = serde_json::from_str(&schema_text).unwrap();
    cn_core_schema_validate(&metrics, &schema);
    assert!(metrics["counters"]["http_requests"].as_u64().unwrap() >= 12);
    assert!(
        span_values(&metrics["spans"]).contains(&missing_dataset_id),
        "request id {missing_dataset_id} missing from span tree: {}",
        metrics["spans"]
    );

    handle.shutdown();
    handle.join();
    assert!(TcpStream::connect(addr).is_err(), "listener closed after shutdown");
}

fn cn_core_schema_validate(value: &Value, schema: &Value) {
    if let Err(violations) = cn_obs::schema::validate(value, schema) {
        panic!("/metrics violates schemas/metrics.schema.json: {violations:?}");
    }
}

#[test]
fn shipped_examples_match_the_api_shapes() {
    let examples = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let read = |name: &str| -> Value {
        serde_json::from_str(&std::fs::read_to_string(examples.join(name)).unwrap())
            .unwrap_or_else(|e| panic!("{name} is not valid JSON: {e:?}"))
    };

    let request = read("serve_request.json");
    assert!(request["dataset"].is_string(), "request names a dataset");

    let response = read("serve_response.json");
    assert_eq!(response["api_version"].as_u64(), Some(cn_serve::API_VERSION));
    assert!(response["request_id"].is_number(), "success payloads carry the request id");
    assert_eq!(response["status"], "done");

    let error = read("serve_error.json");
    if let Err(violations) = cn_obs::schema::validate(&error, &error_schema()) {
        panic!("serve_error.json violates api_error.schema.json: {violations:?}");
    }
}

/// The `value` tags of every `request` span in a `/metrics` span array.
fn span_values(spans: &Value) -> Vec<u64> {
    spans
        .as_array()
        .map(|all| {
            all.iter()
                .filter(|s| s["name"] == "request")
                .filter_map(|s| s["value"].as_u64())
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn overflow_is_rejected_with_429_and_deadlines_cancel() {
    let handle = test_server(1, 1);
    let addr = handle.addr();

    // Occupy the single pipeline worker with a slow job...
    let slow = thread::spawn(move || {
        request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"covid","len":4,"perms":20000}"#))
    });
    // ... give it time to be admitted and picked up ...
    thread::sleep(Duration::from_millis(300));
    // ... then burst: depth 1 means one queues, the rest bounce with 429.
    let burst: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                request(
                    addr,
                    "POST",
                    "/v1/notebooks",
                    Some(r#"{"dataset":"covid","len":3,"perms":99}"#),
                )
            })
        })
        .collect();
    let burst_results: Vec<(u16, Value)> = burst.into_iter().map(|c| c.join().unwrap()).collect();
    let rejected = burst_results.iter().filter(|(s, _)| *s == 429).count();
    let accepted = burst_results.iter().filter(|(s, _)| *s == 200).count();
    assert!(rejected >= 2, "expected admission rejections, got {burst_results:?}");
    assert!(accepted >= 1, "the queued request should complete");
    for (status, body) in &burst_results {
        if *status == 429 {
            assert_envelope(body, "queue_full");
            assert_eq!(body["error"]["retryable"], true, "load shedding is retryable");
        }
    }
    let (slow_status, _) = slow.join().unwrap();
    assert_eq!(slow_status, 200);

    // A request whose deadline already passed returns a cancellation
    // error instead of hanging or running to completion.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/notebooks",
        Some(r#"{"dataset":"covid","len":3,"perms":99,"deadline_ms":0}"#),
    );
    assert_eq!(status, 408, "expected cancellation, got {body:?}");
    assert_envelope(&body, "deadline_exceeded");
    assert!(body["error"]["message"].as_str().unwrap().contains("deadline"));

    // The worker pool survives cancellation: the next request succeeds.
    let (status, body) =
        request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"covid","len":3,"perms":99}"#));
    assert_eq!(status, 200, "pool poisoned after cancellation: {body:?}");

    let report = handle.registry().report();
    assert!(report.counter("admission_rejected") >= 2);
    assert!(report.counter("jobs_cancelled") >= 1);

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_continuations_on_one_session_both_succeed() {
    let handle = test_server(8, 2);
    let addr = handle.addr();

    let (status, body) = request(
        addr,
        "POST",
        "/v1/notebooks",
        Some(r#"{"dataset":"covid","len":3,"perms":99,"seed":0}"#),
    );
    assert_eq!(status, 200, "generation failed: {body:?}");
    let id = body["id"].as_u64().unwrap();

    // Two clients continue the *same* session at once. The cached
    // session is shared read-only, so both must succeed and agree.
    let clients: Vec<_> = (0..2)
        .map(|_| {
            thread::spawn(move || {
                request(
                    addr,
                    "POST",
                    &format!("/v1/sessions/{id}/continue"),
                    Some(r#"{"anchor":0,"k":2}"#),
                )
            })
        })
        .collect();
    let results: Vec<(u16, Value)> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (status, body) in &results {
        assert_eq!(*status, 200, "concurrent continuation failed: {body:?}");
        assert!(!body["suggestions"].as_array().unwrap().is_empty());
    }
    assert_eq!(
        results[0].1["suggestions"], results[1].1["suggestions"],
        "shared session must serve identical suggestions"
    );
    assert_eq!(results[0].1["markdown"], results[1].1["markdown"]);

    // The cached session is not corrupted: a follow-up continuation
    // and the stored notebook still answer correctly.
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/sessions/{id}/continue"),
        Some(r#"{"anchor":0,"k":2}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(body["suggestions"], results[0].1["suggestions"]);
    let (status, body) = request(addr, "GET", &format!("/v1/notebooks/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(body["status"], "done");

    handle.shutdown();
    handle.join();
}
