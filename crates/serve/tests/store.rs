//! Service-level tests of the warm-start store: background
//! precomputation, store hits across LRU eviction of the *table* cache,
//! and cold fallback (never a panic, never a wrong answer) on corrupted
//! or version-mismatched artifacts.

use cn_serve::{start, Catalog, DatasetSpec, Handle, Registry, ServeConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small CSV with a strong region→sales effect so the default build
/// config (200 permutations) finds significant insights quickly.
fn signal_csv(dir: &Path, name: &str) -> PathBuf {
    // Contents must differ per dataset — the store fingerprint hashes
    // table *contents*, not the registered name.
    let salt = name.len() as f64;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "region,channel,sales").unwrap();
    for i in 0..60 {
        let region = i % 3;
        let base = [5.0, 40.0, 90.0][region];
        writeln!(f, "r{},c{},{:.2}", region, i % 2, base + salt + (i % 7) as f64).unwrap();
    }
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cn-serve-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn store_server(dir: &Path, store_dir: Option<PathBuf>, cache_capacity: usize) -> Handle {
    let registry = Arc::new(Registry::new());
    let mut catalog = Catalog::new(cache_capacity, registry);
    for name in ["alpha", "beta"] {
        catalog.register(DatasetSpec {
            name: name.to_string(),
            path: signal_csv(dir, name),
            measures: None,
            ignore: Vec::new(),
        });
    }
    let config = ServeConfig { cache_capacity, store_dir, ..ServeConfig::default() };
    start(config, catalog).expect("bind an ephemeral port")
}

/// Minimal HTTP client: one request, `Connection: close` response.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .filter(|b| !b.is_empty())
        .and_then(|b| serde_json::from_str(b).ok())
        .unwrap_or(Value::Null);
    (status, json_body)
}

/// The `/v1/datasets` entry for `name`.
fn dataset_entry(addr: SocketAddr, name: &str) -> Value {
    let (status, body) = request(addr, "GET", "/v1/datasets", None);
    assert_eq!(status, 200);
    body["datasets"]
        .as_array()
        .unwrap()
        .iter()
        .find(|d| d["name"].as_str() == Some(name))
        .cloned()
        .unwrap_or_else(|| panic!("dataset {name} missing from {body:?}"))
}

/// Polls until `name` reports `warm`, returning its fingerprint.
fn wait_warm(addr: SocketAddr, name: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let entry = dataset_entry(addr, name);
        if entry["store"].as_str() == Some("warm") {
            return entry["fingerprint"].as_str().expect("warm entries carry a fingerprint").into();
        }
        assert!(Instant::now() < deadline, "`{name}` never became warm: {entry:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn precomputed_artifacts_serve_store_hits_across_lru_eviction() {
    let dir = temp_dir("lru");
    // A table cache of one: every alternating request evicts the *other*
    // dataset's table — which must not cost a store miss, because the
    // artifact lives on disk, not in the LRU.
    let handle = store_server(&dir, Some(dir.join("store")), 1);
    let addr = handle.addr();

    let fp_a = wait_warm(addr, "alpha");
    let fp_b = wait_warm(addr, "beta");
    assert_eq!(fp_a.len(), 32, "fingerprint is 32 hex chars: {fp_a}");
    assert!(fp_a.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(fp_a, fp_b, "different tables, different fingerprints");

    // Default seed/perms match the precomputed prefix → every request is
    // a warm start, regardless of table-cache churn.
    for name in ["alpha", "beta", "alpha", "beta"] {
        let (status, body) = request(
            addr,
            "POST",
            "/v1/notebooks",
            Some(&format!(r#"{{"dataset":"{name}","len":3}}"#)),
        );
        assert_eq!(status, 200, "generation failed: {body:?}");
        assert_eq!(body["status"], "done");
    }

    let report = handle.registry().report();
    assert_eq!(report.counter("store_hits"), 4, "all four requests warm-started");
    assert_eq!(report.counter("store_misses"), 0);
    assert_eq!(report.counter("store_invalid"), 0);
    assert_eq!(report.counter("store_builds_completed"), 2, "one build per dataset");
    assert_eq!(report.counter("store_builds_failed"), 0);
    // The LRU genuinely churned underneath: capacity 1, two datasets.
    assert!(report.counter("catalog_misses") >= 3, "table cache was evicting");

    handle.shutdown();
    handle.join();
}

#[test]
fn bad_artifacts_fall_back_to_cold_runs_and_rebuild() {
    let dir = temp_dir("bad");
    let store_dir = dir.join("store");
    let handle = store_server(&dir, Some(store_dir.clone()), 4);
    let addr = handle.addr();
    wait_warm(addr, "alpha");

    let artifact_path = cn_core_store_path(&store_dir, "alpha");

    // 1. Corrupt the artifact wholesale: the request still succeeds
    //    (cold), counts `store_invalid`, and triggers a rebuild.
    std::fs::write(&artifact_path, b"garbage garbage garbage garbage garbage").unwrap();
    let (status, body) =
        request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"alpha","len":3}"#));
    assert_eq!(status, 200, "corrupt artifact must not fail the request: {body:?}");
    let report = handle.registry().report();
    assert!(report.counter("store_invalid") >= 1, "corruption counted");
    assert!(report.counter("store_misses") >= 1);
    wait_warm(addr, "alpha");

    // 2. A version-mismatched artifact (future format) is equally
    //    non-fatal: craft a valid envelope with a bumped version word.
    let mut bytes = b"CNSTORE\n".to_vec();
    bytes.extend_from_slice(&999u32.to_le_bytes());
    bytes.extend_from_slice(&2u64.to_le_bytes());
    bytes.extend_from_slice(b"{}");
    bytes.extend_from_slice(&[0u8; 8]);
    std::fs::write(&artifact_path, bytes).unwrap();
    let invalid_before = handle.registry().report().counter("store_invalid");
    let (status, _) =
        request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"alpha","len":3}"#));
    assert_eq!(status, 200);
    assert!(handle.registry().report().counter("store_invalid") > invalid_before);
    let fp = wait_warm(addr, "alpha");

    // 3. A request overriding a prefix knob (seed) misses without
    //    invalidating or clobbering the default artifact.
    let (status, _) =
        request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"alpha","len":3,"seed":7}"#));
    assert_eq!(status, 200);
    let entry = dataset_entry(addr, "alpha");
    assert_eq!(entry["store"].as_str(), Some("warm"));
    assert_eq!(entry["fingerprint"].as_str(), Some(fp.as_str()), "artifact untouched");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The on-disk path the server's store uses for `name` (mirrors
/// `Store::path_for` without reaching into cn-store from this test).
fn cn_core_store_path(store_dir: &Path, name: &str) -> PathBuf {
    store_dir.join(format!("{name}.cnstore"))
}

#[test]
fn datasets_route_reports_disabled_without_a_store() {
    let dir = temp_dir("nostore");
    let handle = store_server(&dir, None, 4);
    let entry = dataset_entry(handle.addr(), "alpha");
    assert_eq!(entry["store"].as_str(), Some("disabled"));
    assert!(entry["fingerprint"].is_null() || entry.get("fingerprint").is_none());
    let report = handle.registry().report();
    assert_eq!(report.counter("store_builds_started"), 0, "no worker without a store");
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
