//! End-to-end tests for the multi-tenant scheduler in cn-serve:
//! single-flight coalescing, token-bucket rejection, the `/v1/sched`
//! snapshot contract, and the no-policy transparency guarantee.

use cn_serve::{start, Catalog, DatasetSpec, Handle, Registry, SchedConfig, ServeConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn covid_csv() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../data/covid_sample.csv")
}

fn sched_schema() -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/sched.schema.json");
    serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap()
}

/// A server with one pipeline worker and the given scheduling policy
/// (`None` = the legacy single queue).
fn sched_server(policy: Option<&str>) -> Handle {
    let registry = Arc::new(Registry::new());
    let mut catalog = Catalog::new(4, registry);
    catalog.register(DatasetSpec {
        name: "covid".to_string(),
        path: covid_csv(),
        measures: None,
        ignore: Vec::new(),
    });
    let config = ServeConfig {
        http_workers: 8,
        pipeline_workers: 1,
        queue_depth: 32,
        sched: policy.map(|toml| SchedConfig::parse_toml(toml).expect("test policy parses")),
        ..ServeConfig::default()
    };
    start(config, catalog).expect("bind an ephemeral port")
}

/// One request with optional extra headers; returns the status, the
/// raw header block, and the parsed JSON body.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> (u16, String, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let body = body.unwrap_or("");
    let extra: String = headers.iter().map(|(n, v)| format!("{n}: {v}\r\n")).collect();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let (head, tail) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let json_body = if tail.is_empty() {
        Value::Null
    } else {
        serde_json::from_str(tail).unwrap_or(Value::Null)
    };
    (status, head.to_string(), json_body)
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, metrics) = request(addr, "GET", "/metrics", &[], None);
    assert_eq!(status, 200);
    metrics["counters"][name].as_u64().unwrap_or(0)
}

/// Spins until the scheduler reports an in-flight job, so follow-up
/// submissions are guaranteed to land behind it.
fn wait_for_inflight(addr: SocketAddr) {
    for _ in 0..200 {
        let (_, _, snap) = request(addr, "GET", "/v1/sched", &[], None);
        if snap["inflight"].as_u64().unwrap_or(0) >= 1 {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("no job ever went in flight");
}

const POLICY: &str = "\
[defaults]\n\
max_queued = 32\n\
\n\
[tenants.slow]\n\
rate = 0.001\n\
burst = 1.0\n\
";

#[test]
fn identical_concurrent_requests_coalesce_onto_one_pipeline_run() {
    let handle = sched_server(Some(POLICY));
    let addr = handle.addr();

    // Occupy the only pipeline worker so the identical burst below is
    // guaranteed to queue — and therefore to coalesce — behind it.
    let blocker = thread::spawn(move || {
        request(
            addr,
            "POST",
            "/v1/notebooks",
            &[],
            Some(r#"{"dataset":"covid","len":4,"perms":5000,"seed":7}"#),
        )
    });
    wait_for_inflight(addr);

    let clients: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                request(
                    addr,
                    "POST",
                    "/v1/notebooks",
                    &[],
                    Some(r#"{"dataset":"covid","len":3,"perms":50,"seed":1}"#),
                )
            })
        })
        .collect();
    let results: Vec<(u16, String, Value)> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();
    let (status, _, _) = blocker.join().unwrap();
    assert_eq!(status, 200);

    // All four clients succeed with byte-identical notebooks...
    let markdown = results[0].2["markdown"].as_str().unwrap().to_string();
    assert!(markdown.contains("Comparison notebook"));
    for (status, _, body) in &results {
        assert_eq!(*status, 200, "coalesced request failed: {body}");
        assert_eq!(body["status"], "done");
        assert_eq!(body["markdown"].as_str().unwrap(), markdown, "notebooks must be identical");
    }
    // ...but the pipeline ran exactly twice: the blocker and one leader.
    assert_eq!(counter(addr, "jobs_completed"), 2, "followers must not re-run the pipeline");
    assert_eq!(counter(addr, "sched_coalesced"), 3, "three requests attach as followers");
    assert_eq!(counter(addr, "sched_dispatched"), 2);

    handle.shutdown();
    handle.join();
}

#[test]
fn an_empty_token_bucket_rejects_with_rate_limited_and_retry_after() {
    let handle = sched_server(Some(POLICY));
    let addr = handle.addr();

    // Burst of 1: the first request drains tenant `slow`'s bucket.
    let (status, _, _) = request(
        addr,
        "POST",
        "/v1/notebooks",
        &[("X-CN-Tenant", "slow")],
        Some(r#"{"dataset":"covid","len":2,"perms":20,"seed":1}"#),
    );
    assert_eq!(status, 200);

    // A different request (no coalescing) from the same tenant is
    // refused by admission with the refill-derived Retry-After.
    let (status, head, body) = request(
        addr,
        "POST",
        "/v1/notebooks",
        &[("X-CN-Tenant", "slow")],
        Some(r#"{"dataset":"covid","len":2,"perms":20,"seed":2}"#),
    );
    assert_eq!(status, 429, "body: {body}");
    assert_eq!(body["error"]["code"], "rate_limited");
    assert_eq!(body["error"]["retryable"], true);
    let retry_after: u64 = head
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .expect("429 carries Retry-After")
        .trim()
        .parse()
        .unwrap();
    assert!(retry_after >= 1, "refill math yields at least one second");
    assert!(counter(addr, "sched_rejected_rate") >= 1);

    // The default tenant is untouched by `slow`'s bucket.
    let (status, _, _) = request(
        addr,
        "POST",
        "/v1/notebooks",
        &[],
        Some(r#"{"dataset":"covid","len":2,"perms":20,"seed":3}"#),
    );
    assert_eq!(status, 200);

    handle.shutdown();
    handle.join();
}

#[test]
fn the_sched_snapshot_validates_against_its_schema() {
    let handle = sched_server(Some(POLICY));
    let addr = handle.addr();

    let (status, _, _) = request(
        addr,
        "POST",
        "/v1/notebooks",
        &[("X-CN-Tenant", "alice")],
        Some(r#"{"dataset":"covid","len":2,"perms":20,"seed":1}"#),
    );
    assert_eq!(status, 200);

    let (status, _, snap) = request(addr, "GET", "/v1/sched", &[], None);
    assert_eq!(status, 200);
    if let Err(violations) = cn_obs::schema::validate(&snap, &sched_schema()) {
        panic!("/v1/sched violates schemas/sched.schema.json: {violations:?}\nbody: {snap}");
    }
    assert_eq!(snap["enabled"], true);
    assert_eq!(snap["totals"]["dispatched"], 1);
    let names: Vec<&str> =
        snap["tenants"].as_array().unwrap().iter().map(|t| t["name"].as_str().unwrap()).collect();
    assert!(names.contains(&"alice"), "tenants: {names:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn without_a_policy_the_scheduler_is_transparent() {
    let handle = sched_server(None);
    let addr = handle.addr();

    // Two concurrent *identical* requests: the legacy server runs the
    // pipeline twice (no coalescing), and the tenant header is ignored.
    let body = r#"{"dataset":"covid","len":3,"perms":50,"seed":5}"#;
    let clients: Vec<_> = ["alice", "bob"]
        .into_iter()
        .map(|tenant| {
            thread::spawn(move || {
                request(addr, "POST", "/v1/notebooks", &[("X-CN-Tenant", tenant)], Some(body))
            })
        })
        .collect();
    let results: Vec<(u16, String, Value)> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (status, _, body) in &results {
        assert_eq!(*status, 200, "body: {body}");
    }
    // Deterministic pipeline: both runs produce byte-identical
    // notebooks even though each ran separately.
    assert_eq!(
        results[0].2["markdown"].as_str().unwrap(),
        results[1].2["markdown"].as_str().unwrap()
    );
    assert_eq!(counter(addr, "sched_coalesced"), 0, "no policy, no coalescing");
    assert_eq!(counter(addr, "jobs_completed"), 2);

    let (status, _, snap) = request(addr, "GET", "/v1/sched", &[], None);
    assert_eq!(status, 200);
    if let Err(violations) = cn_obs::schema::validate(&snap, &sched_schema()) {
        panic!("/v1/sched violates schemas/sched.schema.json: {violations:?}\nbody: {snap}");
    }
    assert_eq!(snap["enabled"], false);
    // Every request billed to the single built-in tenant.
    let tenants = snap["tenants"].as_array().unwrap();
    assert_eq!(tenants.len(), 1, "tenants: {tenants:?}");
    assert_eq!(tenants[0]["name"], "default");
    assert_eq!(tenants[0]["dispatched"], 2);

    // The gauges land in /metrics and settle to zero at idle (the
    // in-flight count drops just *after* the response is written, so
    // poll briefly).
    let mut settled = false;
    for _ in 0..200 {
        let (status, _, metrics) = request(addr, "GET", "/metrics", &[], None);
        assert_eq!(status, 200);
        assert_eq!(metrics["gauges"]["queue_depth"], 0);
        if metrics["gauges"]["inflight_jobs"] == 0 {
            settled = true;
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    assert!(settled, "inflight_jobs never returned to zero");

    handle.shutdown();
    handle.join();
}
