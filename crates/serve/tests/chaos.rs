//! Chaos tests: seeded fault plans injected under a live server.
//!
//! Each scenario asserts the ISSUE-level robustness contract: faults
//! never change *answers* (notebooks stay byte-identical to a
//! fault-free run), they only change *paths* — retries, quarantine,
//! degradation — and every path leaves its fingerprints in `/metrics`.
//!
//! The fault hook is process-global, so every test serializes through
//! [`chaos`], whose guard uninstalls the hook even on panic.

use cn_fault::{FaultPlan, RetryPolicy};
use cn_serve::{start, Catalog, DatasetSpec, Handle, Registry, ServeConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Serializes fault-hook ownership across tests and guarantees the
/// hook is gone when the scenario ends, pass or panic.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        cn_fault::uninstall();
    }
}

fn chaos() -> ChaosGuard {
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cn_fault::uninstall();
    ChaosGuard(guard)
}

/// A small CSV with a strong region→sales effect (same shape as the
/// store tests) so default builds find significant insights quickly.
fn signal_csv(dir: &Path, name: &str) -> PathBuf {
    let salt = name.len() as f64;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "region,channel,sales").unwrap();
    for i in 0..60 {
        let region = i % 3;
        let base = [5.0, 40.0, 90.0][region];
        writeln!(f, "r{},c{},{:.2}", region, i % 2, base + salt + (i % 7) as f64).unwrap();
    }
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cn-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chaos_server(dir: &Path, config: ServeConfig) -> Handle {
    let registry = Arc::new(Registry::new());
    let mut catalog = Catalog::new(4, registry);
    catalog.register(DatasetSpec {
        name: "alpha".to_string(),
        path: signal_csv(dir, "alpha"),
        measures: None,
        ignore: Vec::new(),
    });
    start(config, catalog).expect("bind an ephemeral port")
}

/// A retry policy shaped like production but fast enough for tests.
fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy::new(max_attempts)
        .with_base(Duration::from_millis(2))
        .with_cap(Duration::from_millis(10))
}

/// Minimal HTTP client returning the raw response text (status line,
/// headers, body) — chaos assertions need headers like `Retry-After`.
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let response = raw_request(addr, method, path, body);
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .filter(|b| !b.is_empty())
        .and_then(|b| serde_json::from_str(b).ok())
        .unwrap_or(Value::Null);
    (status, json_body)
}

/// Polls `/v1/datasets` until `alpha` reports `warm`.
fn wait_warm(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = request(addr, "GET", "/v1/datasets", None);
        assert_eq!(status, 200);
        let entry = body["datasets"]
            .as_array()
            .unwrap()
            .iter()
            .find(|d| d["name"].as_str() == Some("alpha"))
            .cloned()
            .unwrap_or(Value::Null);
        if entry["store"].as_str() == Some("warm") {
            return;
        }
        assert!(Instant::now() < deadline, "`alpha` never became warm: {entry:?}");
        thread::sleep(Duration::from_millis(100));
    }
}

/// Generates the default notebook and returns its markdown.
fn generate(addr: SocketAddr) -> String {
    let (status, body) =
        request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"alpha","len":3}"#));
    assert_eq!(status, 200, "generation failed: {body:?}");
    assert_eq!(body["status"], "done");
    body["markdown"].as_str().expect("markdown in response").to_string()
}

fn health(addr: SocketAddr) -> String {
    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    body["status"].as_str().unwrap().to_string()
}

#[test]
fn flapping_store_reads_retry_to_a_byte_identical_notebook() {
    let _guard = chaos();
    let dir = temp_dir("flap");
    let handle = chaos_server(
        &dir,
        ServeConfig {
            store_dir: Some(dir.join("store")),
            store_retry: fast_retry(3),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    wait_warm(addr);

    // Fault-free baseline: the hooks are installed but empty, so they
    // must be inert — no retries, no injections.
    let baseline = generate(addr);
    let report = handle.registry().report();
    assert_eq!(report.counter("faults_injected"), 0, "no hook, no faults");
    assert_eq!(report.counter("retry_attempts"), 0, "no faults, no retries");
    assert!(report.counter("store_hits") >= 1, "baseline warm-started");

    // The next two store reads fail with an injected EIO; the third
    // succeeds. The default-path request must retry through the window
    // and produce the exact same bytes.
    cn_fault::install(Arc::new(
        FaultPlan::seeded(42).fail("store.read", 0, 2, "EIO").observe(handle.registry().clone()),
    ));
    let under_faults = generate(addr);
    assert_eq!(under_faults, baseline, "faults must never change the notebook");

    let report = handle.registry().report();
    assert!(report.counter("retry_attempts") >= 2, "two flaps, two retries");
    assert!(report.counter("faults_injected") >= 2);
    assert!(report.counter("store_hits") >= 2, "the third read warm-started");
    assert_eq!(health(addr), "ok", "recovered reads never degrade the store");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_artifacts_are_quarantined_and_rebuilt() {
    let _guard = chaos();
    let dir = temp_dir("quarantine");
    let store_dir = dir.join("store");
    let handle = chaos_server(
        &dir,
        ServeConfig {
            store_dir: Some(store_dir.clone()),
            store_retry: fast_retry(3),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    wait_warm(addr);
    let baseline = generate(addr);

    // One bit of the next artifact read flips: the checksum catches it,
    // the request falls back cold (same bytes out), and the damaged
    // file is moved aside — evidence preserved, never clobbered.
    cn_fault::install(Arc::new(
        FaultPlan::seeded(7)
            .corrupt_bytes("store.read.bytes", 0, 1)
            .observe(handle.registry().clone()),
    ));
    let under_faults = generate(addr);
    assert_eq!(under_faults, baseline, "cold fallback produces identical bytes");

    let report = handle.registry().report();
    assert!(report.counter("store_invalid") >= 1, "corruption detected");
    assert!(report.counter("store_quarantined") >= 1, "artifact quarantined");
    assert!(
        store_dir.join("alpha.cnstore.quarantined").exists(),
        "the damaged artifact is preserved on disk"
    );

    // The rebuild restores a warm artifact at the original path while
    // the quarantined copy stays put.
    cn_fault::uninstall();
    wait_warm(addr);
    assert!(store_dir.join("alpha.cnstore").exists(), "rebuilt at the original path");
    assert!(store_dir.join("alpha.cnstore.quarantined").exists(), "evidence still there");
    assert_eq!(generate(addr), baseline, "rebuilt artifact replays identically");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_store_failure_degrades_then_recovers() {
    let _guard = chaos();
    let dir = temp_dir("degrade");
    let handle = chaos_server(
        &dir,
        ServeConfig {
            store_dir: Some(dir.join("store")),
            store_retry: fast_retry(2),
            degrade_after: 1,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    wait_warm(addr);
    let baseline = generate(addr);
    assert_eq!(health(addr), "ok");

    // Every store read fails: the first exhausted retry crosses the
    // (threshold 1) failure streak and degrades the store. Requests
    // keep succeeding on the cold path with identical bytes.
    cn_fault::install(Arc::new(
        FaultPlan::seeded(3)
            .fail("store.read", 0, u64::MAX, "EIO")
            .observe(handle.registry().clone()),
    ));
    assert_eq!(generate(addr), baseline, "degraded service still answers correctly");
    assert_eq!(health(addr), "degraded");
    let (status, body) = request(addr, "GET", "/v1/datasets", None);
    assert_eq!(status, 200);
    assert_eq!(body["store_health"], "degraded");
    let report = handle.registry().report();
    assert_eq!(report.counter("degraded_transitions"), 1, "one edge into degraded");

    // Degraded mode fails fast: a second request stays cold and does
    // not re-count the transition.
    assert_eq!(generate(addr), baseline);
    assert_eq!(health(addr), "degraded");
    assert_eq!(handle.registry().report().counter("degraded_transitions"), 1);

    // The disk heals (hook removed): the first successful read flips
    // the store back to healthy — the second transition edge.
    cn_fault::uninstall();
    assert_eq!(generate(addr), baseline);
    assert_eq!(health(addr), "ok");
    let report = handle.registry().report();
    assert_eq!(report.counter("degraded_transitions"), 2, "degraded → recovered");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_shedding_replies_carry_retry_after_and_the_envelope() {
    let _guard = chaos();
    let dir = temp_dir("shed");
    let handle = chaos_server(
        &dir,
        ServeConfig {
            store_dir: Some(dir.join("store")),
            store_retry: fast_retry(1),
            pipeline_workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    wait_warm(addr);

    // Every store read stalls 400 ms: one worker and a depth-1 queue
    // guarantee a concurrent burst overflows admission.
    cn_fault::install(Arc::new(FaultPlan::seeded(9).delay("store.read", 0, u64::MAX, 400)));
    let burst: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                raw_request(addr, "POST", "/v1/notebooks", Some(r#"{"dataset":"alpha","len":3}"#))
            })
        })
        .collect();
    let responses: Vec<String> = burst.into_iter().map(|c| c.join().unwrap()).collect();

    let rejected: Vec<&String> =
        responses.iter().filter(|r| r.starts_with("HTTP/1.1 429")).collect();
    assert!(!rejected.is_empty(), "burst should overflow admission: {responses:?}");
    for response in rejected {
        assert!(response.contains("Retry-After: 1\r\n"), "429 without Retry-After: {response}");
        let body: Value = serde_json::from_str(response.split_once("\r\n\r\n").unwrap().1).unwrap();
        assert_eq!(body["error"]["code"], "queue_full", "429 body: {body}");
        assert_eq!(body["error"]["retryable"], true, "load shedding is retryable");
    }
    assert!(
        responses.iter().any(|r| r.starts_with("HTTP/1.1 200")),
        "admitted requests still complete"
    );

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
