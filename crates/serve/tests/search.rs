//! End-to-end tests of the similarity index over a real socket: the
//! background indexer, `/v1/search` and `/v1/notebooks/{id}/similar`,
//! persistence across restarts, quarantine of a damaged index file,
//! and the `use_index` continuation knob — including the guarantee
//! that *not* opting in leaves responses byte-identical to an
//! index-less server.

use cn_obs::Metric;
use cn_serve::{start, Catalog, DatasetSpec, Handle, Registry, ServeConfig};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn covid_csv() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../data/covid_sample.csv")
}

fn schema(name: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas").join(name);
    serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap()
}

fn assert_valid(body: &Value, schema_name: &str) {
    if let Err(violations) = cn_obs::schema::validate(body, &schema(schema_name)) {
        panic!("body violates {schema_name}: {violations:?}\nbody: {body}");
    }
}

fn assert_error(body: &Value, code: &str) {
    assert_valid(body, "api_error.schema.json");
    assert_eq!(body["error"]["code"].as_str().unwrap(), code, "body: {body}");
}

fn test_server(index_path: Option<PathBuf>) -> Handle {
    let registry = Arc::new(Registry::new());
    let mut catalog = Catalog::new(4, registry);
    catalog.register(DatasetSpec {
        name: "covid".to_string(),
        path: covid_csv(),
        measures: None,
        ignore: Vec::new(),
    });
    let config = ServeConfig {
        http_workers: 4,
        pipeline_workers: 2,
        queue_depth: 16,
        index_path,
        ..ServeConfig::default()
    };
    start(config, catalog).expect("bind an ephemeral port")
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap();
    let json_body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .filter(|b| !b.is_empty())
        .and_then(|b| serde_json::from_str(b).ok())
        .unwrap_or(Value::Null);
    (status, json_body)
}

fn generate(addr: SocketAddr, seed: u64) -> u64 {
    let (status, body) = request(
        addr,
        "POST",
        "/v1/notebooks",
        Some(&format!(r#"{{"dataset":"covid","len":3,"perms":99,"seed":{seed}}}"#)),
    );
    assert_eq!(status, 200, "generation failed: {body:?}");
    body["id"].as_u64().unwrap()
}

/// Waits for the background indexer to reach `n` registered documents.
fn await_index_docs(handle: &Handle, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.registry().get(Metric::IndexDocs) < n {
        assert!(Instant::now() < deadline, "indexer never reached {n} docs");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn tmp_index(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cn-serve-search-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("notebooks.cnidx")
}

#[test]
fn indexed_server_end_to_end() {
    let index_path = tmp_index("e2e");
    let handle = test_server(Some(index_path.clone()));
    let addr = handle.addr();

    // An empty corpus answers, it just has nothing to say.
    let (status, body) = request(addr, "GET", "/v1/search?q=cases", None);
    assert_eq!(status, 200);
    assert_valid(&body, "search.schema.json");
    assert!(body["hits"].as_array().unwrap().is_empty());

    // Two generated notebooks reach the index in the background.
    let id = generate(addr, 1);
    generate(addr, 2);
    await_index_docs(&handle, 2);
    assert!(index_path.exists(), "registration persists the corpus");

    // Bad parameters are typed 400 envelopes.
    let (status, body) = request(addr, "GET", "/v1/search", None);
    assert_eq!(status, 400);
    assert_error(&body, "bad_request");
    let (status, body) = request(addr, "GET", "/v1/search?q=cases&k=0", None);
    assert_eq!(status, 400);
    assert_error(&body, "bad_request");
    let (status, body) = request(addr, "GET", "/v1/search?q=cases&mode=manhattan", None);
    assert_eq!(status, 400);
    assert_error(&body, "bad_request");

    // Search finds the registered notebooks, and repeating the query
    // returns the identical ranking (only the request id moves).
    let (status, first) = request(addr, "GET", "/v1/search?q=measure%3Acases&k=5", None);
    assert_eq!(status, 200, "search failed: {first:?}");
    assert_valid(&first, "search.schema.json");
    assert_eq!(first["mode"], "cosine");
    assert_eq!(first["query"], "measure:cases");
    assert!(!first["hits"].as_array().unwrap().is_empty(), "indexed notebooks must match");
    let (_, second) = request(addr, "GET", "/v1/search?q=measure%3Acases&k=5", None);
    assert_eq!(first["hits"], second["hits"], "same corpus, same query, same ranking");
    let (status, jaccard) = request(addr, "GET", "/v1/search?q=measure%3Acases&mode=jaccard", None);
    assert_eq!(status, 200);
    assert_valid(&jaccard, "search.schema.json");
    assert_eq!(jaccard["mode"], "jaccard");

    // Similar notebooks for a finished job exclude the job itself.
    let (status, similar) = request(addr, "GET", &format!("/v1/notebooks/{id}/similar?k=3"), None);
    assert_eq!(status, 200, "similar failed: {similar:?}");
    assert_valid(&similar, "search.schema.json");
    let anchor = similar["anchor"].as_str().unwrap();
    for hit in similar["hits"].as_array().unwrap() {
        assert_ne!(hit["id"].as_str().unwrap(), anchor, "a notebook is not similar to itself");
    }
    let (status, body) = request(addr, "GET", "/v1/notebooks/99999/similar", None);
    assert_eq!(status, 404);
    assert_error(&body, "not_found");

    // The opt-in indexed continuation carries evidence fields.
    let (status, body) = request(
        addr,
        "POST",
        &format!("/v1/sessions/{id}/continue"),
        Some(r#"{"anchor":0,"k":2,"use_index":true}"#),
    );
    assert_eq!(status, 200, "indexed continuation failed: {body:?}");
    assert_eq!(body["use_index"], true);
    let suggestions = body["suggestions"].as_array().unwrap();
    assert!(!suggestions.is_empty());
    for s in suggestions {
        assert!(s["evidence"].is_number());
        assert!(s["boosted"].is_number());
    }
    assert!(body["markdown"].as_str().unwrap().contains("Continuation"));

    // Search traffic landed in /metrics.
    let report = handle.registry().report();
    assert!(report.counter("index_searches") >= 5);
    assert!(report.counter("index_hits") >= 1);
    assert!(report.counter("index_search_empty") >= 1);
    assert_eq!(report.counter("index_docs"), 2);

    handle.shutdown();
    handle.join();

    // A restart loads the persisted corpus instead of starting cold.
    let handle = test_server(Some(index_path.clone()));
    assert_eq!(handle.registry().get(Metric::IndexDocs), 2, "corpus survives restart");
    let (status, body) = request(handle.addr(), "GET", "/v1/search?q=measure%3Acases&k=5", None);
    assert_eq!(status, 200);
    assert_eq!(body["hits"], first["hits"], "the reloaded corpus answers identically");
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(index_path.parent().unwrap());
}

#[test]
fn default_continuations_are_identical_with_and_without_the_index() {
    let index_path = tmp_index("identity");
    let indexed = test_server(Some(index_path.clone()));
    let plain = test_server(None);

    // Same dataset, same seed, same knobs — and on the indexed server
    // the corpus already holds other notebooks, so any accidental
    // index influence on the default path would show.
    generate(indexed.addr(), 7);
    let a = generate(indexed.addr(), 3);
    let b = generate(plain.addr(), 3);
    await_index_docs(&indexed, 2);
    let body = r#"{"anchor":0,"k":2}"#;
    let (status_a, from_indexed) =
        request(indexed.addr(), "POST", &format!("/v1/sessions/{a}/continue"), Some(body));
    let (status_b, from_plain) =
        request(plain.addr(), "POST", &format!("/v1/sessions/{b}/continue"), Some(body));
    assert_eq!(status_a, 200);
    assert_eq!(status_b, 200);
    assert_eq!(
        from_indexed["suggestions"], from_plain["suggestions"],
        "without `use_index` the index must not touch the ranking"
    );
    assert_eq!(from_indexed["markdown"], from_plain["markdown"]);
    assert!(from_indexed.get("use_index").is_none(), "default path carries no index marker");

    indexed.shutdown();
    indexed.join();
    plain.shutdown();
    plain.join();
    let _ = std::fs::remove_dir_all(index_path.parent().unwrap());
}

#[test]
fn search_routes_404_without_an_index() {
    let handle = test_server(None);
    let addr = handle.addr();
    let (status, body) = request(addr, "GET", "/v1/search?q=cases", None);
    assert_eq!(status, 404);
    assert_error(&body, "not_found");
    let (status, body) = request(addr, "GET", "/v1/notebooks/1/similar", None);
    assert_eq!(status, 404);
    assert_error(&body, "not_found");
    handle.shutdown();
    handle.join();
}

#[test]
fn a_damaged_index_file_quarantines_and_the_server_starts_cold() {
    let index_path = tmp_index("damage");
    std::fs::write(&index_path, b"CNINDEX\nthis is not a valid envelope").unwrap();
    let handle = test_server(Some(index_path.clone()));
    let addr = handle.addr();
    let (status, health) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(health["status"], "ok", "a damaged index never blocks startup");
    assert_eq!(handle.registry().get(Metric::IndexDocs), 0);
    let quarantined = index_path.with_extension("cnidx.quarantined");
    assert!(quarantined.exists(), "the damaged file is moved aside, not deleted");
    // The cold index still registers new work.
    generate(addr, 1);
    await_index_docs(&handle, 1);
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(index_path.parent().unwrap());
}

#[test]
fn shipped_search_example_matches_the_schema() {
    let example =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/serve_search.json");
    let body: Value = serde_json::from_str(&std::fs::read_to_string(example).unwrap()).unwrap();
    assert_valid(&body, "search.schema.json");
    assert_eq!(body["api_version"].as_u64(), Some(cn_serve::API_VERSION));
}
