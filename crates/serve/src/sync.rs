//! Poison-recovering lock helpers — re-exported from their shared home.
//!
//! These started life here when only the HTTP service needed them; the
//! CN-R2 burn-down moved them to [`cn_obs::sync`] so every crate can
//! adopt them without depending on the server. This module stays as a
//! re-export so existing `cn_serve::sync::lock_unpoisoned` callers and
//! docs keep working.

pub use cn_obs::sync::{lock_unpoisoned, wait_unpoisoned};
