//! The background notebook indexer.
//!
//! With an index path configured ([`crate::ServeConfig::index_path`])
//! the server opens (or cold-rebuilds) a `cn-index` corpus at startup
//! and registers every completed generation job's notebook document
//! through a dedicated `cn-serve-index` thread, fed by an mpsc channel
//! whose senders live in the pipeline workers — when the workers exit
//! at shutdown the channel disconnects and the indexer drains and
//! stops, the same lifecycle discipline as the precompute worker.
//!
//! Searches (HTTP handlers, continuation reranks) go through
//! [`ServeIndex`] so every one lands in `/metrics`: `index_searches`,
//! `index_hits`, `index_search_empty`, and the `index_search_us`
//! latency histogram.

use cn_index::{Document, Hit, Index, LoadOutcome, ScoreKind};
use cn_obs::{Hist, Metric, Registry};
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Instant;

use crate::sync::lock_unpoisoned;

/// The server's shared similarity index: the in-memory corpus plus the
/// CNIDX file it persists to after every registration.
pub struct ServeIndex {
    index: Mutex<Index>,
    path: PathBuf,
}

impl ServeIndex {
    /// Opens the index at `path` via `load_or_rebuild` — a damaged file
    /// is quarantined and the corpus starts cold; the server always
    /// comes up. Loaded documents count into `index_docs`.
    pub fn open(path: PathBuf, obs: &Registry) -> ServeIndex {
        let (index, outcome) = cn_index::load_or_rebuild(&path);
        match outcome {
            LoadOutcome::Loaded(n) => obs.add(Metric::IndexDocs, n as u64),
            LoadOutcome::Fresh | LoadOutcome::Quarantined(_) | LoadOutcome::Failed(_) => {}
        }
        ServeIndex { index: Mutex::new(index), path }
    }

    /// Documents currently indexed.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.index).len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers `doc` and persists the corpus; a duplicate content id
    /// is a no-op (no count, no write). Persistence failure is not
    /// fatal — the in-memory corpus still serves; the next successful
    /// registration rewrites the whole file.
    pub fn register(&self, doc: Document, obs: &Registry) {
        let mut index = lock_unpoisoned(&self.index);
        if !index.insert(doc) {
            return;
        }
        obs.inc(Metric::IndexDocs);
        let _ = cn_index::save(&index, &self.path);
    }

    /// Weighted top-k search over the corpus, counted and timed.
    pub fn search(
        &self,
        terms: &[(String, f64)],
        k: usize,
        kind: ScoreKind,
        obs: &Registry,
    ) -> Vec<Hit> {
        let start = Instant::now();
        let hits = lock_unpoisoned(&self.index).search(terms, k, kind, 1);
        self.count(&hits, start, obs);
        hits
    }

    /// Hits most similar to `doc` (excluding it), counted and timed.
    /// Works whether or not `doc` itself is registered yet.
    pub fn similar_to(
        &self,
        doc: &Document,
        k: usize,
        kind: ScoreKind,
        obs: &Registry,
    ) -> Vec<Hit> {
        let start = Instant::now();
        let hits = lock_unpoisoned(&self.index).similar_to(doc, k, kind, 1);
        self.count(&hits, start, obs);
        hits
    }

    /// Runs `f` against the corpus under the lock (continuation
    /// reranking needs the raw [`Index`]), counted and timed as one
    /// search.
    pub fn with_index<R>(&self, obs: &Registry, f: impl FnOnce(&Index) -> R) -> R {
        let start = Instant::now();
        let out = f(&lock_unpoisoned(&self.index));
        obs.inc(Metric::IndexSearches);
        obs.record(Hist::IndexSearchMicros, start.elapsed().as_micros() as u64);
        out
    }

    fn count(&self, hits: &[Hit], start: Instant, obs: &Registry) {
        obs.inc(Metric::IndexSearches);
        if hits.is_empty() {
            obs.inc(Metric::IndexSearchEmpty);
        } else {
            obs.add(Metric::IndexHits, hits.len() as u64);
        }
        obs.record(Hist::IndexSearchMicros, start.elapsed().as_micros() as u64);
    }
}

/// The `cn-serve-index` thread body: drain documents until every
/// sender (one per pipeline worker) is gone.
pub fn worker_loop(index: &ServeIndex, obs: &Registry, rx: &Receiver<Document>) {
    while let Ok(doc) = rx.recv() {
        index.register(doc, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_index::document;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cn-serve-index-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("corpus.cnidx")
    }

    fn doc(title: &str) -> Document {
        document("demo", title, 2, vec![("group:month".to_string(), 1.0)])
    }

    #[test]
    fn register_persists_counts_and_dedups() {
        let path = tmp("register");
        let obs = Registry::new();
        let ix = ServeIndex::open(path.clone(), &obs);
        assert!(ix.is_empty());
        ix.register(doc("a"), &obs);
        ix.register(doc("a"), &obs); // duplicate: no-op
        ix.register(doc("b"), &obs);
        assert_eq!(ix.len(), 2);
        assert_eq!(obs.get(Metric::IndexDocs), 2);
        // A fresh open loads what was persisted, counting the docs.
        let obs2 = Registry::new();
        let reopened = ServeIndex::open(path.clone(), &obs2);
        assert_eq!(reopened.len(), 2);
        assert_eq!(obs2.get(Metric::IndexDocs), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn searches_land_in_metrics() {
        let path = tmp("metrics");
        let obs = Registry::new();
        let ix = ServeIndex::open(path.clone(), &obs);
        ix.register(doc("a"), &obs);
        let hits = ix.search(&[("group:month".to_string(), 1.0)], 5, ScoreKind::Cosine, &obs);
        assert_eq!(hits.len(), 1);
        let none = ix.search(&[("group:nothing".to_string(), 1.0)], 5, ScoreKind::Cosine, &obs);
        assert!(none.is_empty());
        assert_eq!(obs.get(Metric::IndexSearches), 2);
        assert_eq!(obs.get(Metric::IndexHits), 1);
        assert_eq!(obs.get(Metric::IndexSearchEmpty), 1);
        // similar_to an unregistered anchor works and excludes nothing.
        let ghost = doc("ghost");
        let sim = ix.similar_to(&ghost, 5, ScoreKind::Cosine, &obs);
        assert_eq!(sim.len(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn a_damaged_file_quarantines_at_open() {
        let path = tmp("damage");
        let obs = Registry::new();
        let ix = ServeIndex::open(path.clone(), &obs);
        ix.register(doc("a"), &obs);
        drop(ix);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let obs2 = Registry::new();
        let reopened = ServeIndex::open(path.clone(), &obs2);
        assert!(reopened.is_empty(), "corrupt file must fall back to a cold corpus");
        assert_eq!(obs2.get(Metric::IndexDocs), 0);
        assert!(
            path.parent().unwrap().read_dir().unwrap().any(|e| e
                .unwrap()
                .file_name()
                .to_string_lossy()
                .contains("quarantined")),
            "the damaged file is moved aside, not deleted"
        );
        // The cold corpus still registers and persists.
        reopened.register(doc("b"), &obs2);
        assert_eq!(reopened.len(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
