//! The versioned API error envelope.
//!
//! Every non-2xx response carries the same machine-readable JSON shape
//! (validated in CI against `schemas/api_error.schema.json`):
//!
//! ```json
//! {
//!   "api_version": 1,
//!   "error": {
//!     "code": "queue_full",
//!     "message": "generation queue full; retry later",
//!     "retryable": true,
//!     "request_id": 42
//!   }
//! }
//! ```
//!
//! `code` is a stable machine string (clients branch on it; the
//! human-readable `message` may change freely), `retryable` tells a
//! client whether backing off and resending the identical request can
//! succeed, and `request_id` is the server-assigned monotonic id that
//! also tags the request's span in the `/metrics` span tree — one
//! number correlates a client-side error with the server-side trace.
//! Retryable 429/503 responses additionally carry a `Retry-After`
//! header (seconds).

use crate::catalog::CatalogError;
use crate::http::{ParseError, Response};
use cn_pipeline::PipelineError;
use serde_json::json;

/// Version of the error envelope (and of success payloads that embed
/// `request_id`).
pub const API_VERSION: u64 = 1;

/// A fully classified API failure, ready to render as an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable code (see `schemas/api_error.schema.json`
    /// for the closed vocabulary).
    pub code: &'static str,
    /// Human-readable detail; not part of the stable contract.
    pub message: String,
    /// Whether resending the identical request can plausibly succeed.
    pub retryable: bool,
    /// Seconds for a `Retry-After` header (load-shedding responses).
    pub retry_after: Option<u64>,
}

impl ApiError {
    /// A non-retryable error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError { status, code, message: message.into(), retryable: false, retry_after: None }
    }

    /// 400 — the request itself is malformed (bad JSON, missing field).
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad_request", message)
    }

    /// 404 — no route or resource at this path.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError::new(404, "not_found", message)
    }

    /// 405 — the route exists but not for this method.
    pub fn method_not_allowed() -> ApiError {
        ApiError::new(405, "method_not_allowed", "unsupported method")
    }

    /// 429 — admission control refused the job; retry after backoff.
    pub fn queue_full() -> ApiError {
        ApiError {
            status: 429,
            code: "queue_full",
            message: "generation queue full; retry later".to_string(),
            retryable: true,
            retry_after: Some(1),
        }
    }

    /// 429 — the tenant's token bucket is empty; `retry_after_secs`
    /// comes straight from the scheduler's refill math, so a client
    /// that honors the header is admitted on its next try.
    pub fn rate_limited(retry_after_secs: u64) -> ApiError {
        ApiError {
            status: 429,
            code: "rate_limited",
            message: format!("tenant admission rate exceeded; retry in {retry_after_secs}s"),
            retryable: true,
            retry_after: Some(retry_after_secs),
        }
    }

    /// 503 — the server is draining and accepts no new work.
    pub fn draining() -> ApiError {
        ApiError {
            status: 503,
            code: "draining",
            message: "server is draining; not accepting new work".to_string(),
            retryable: true,
            retry_after: Some(2),
        }
    }

    /// 500 — an internal invariant broke; the request was well-formed.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError::new(500, "internal", message)
    }

    /// Classifies an HTTP parse failure (`ParseError::Io` never reaches
    /// here — a dead socket gets no response at all).
    pub fn from_parse(e: &ParseError) -> ApiError {
        match e {
            ParseError::BodyTooLarge(_) => ApiError::new(413, "body_too_large", e.to_string()),
            _ => ApiError::bad_request(e.to_string()),
        }
    }

    /// Classifies a catalog failure.
    pub fn from_catalog(e: &CatalogError) -> ApiError {
        let (status, code) = catalog_code(e);
        ApiError::new(status, code, e.to_string())
    }

    /// Classifies a pipeline failure.
    pub fn from_pipeline(e: &PipelineError) -> ApiError {
        let (status, code) = pipeline_code(e);
        ApiError::new(status, code, e.to_string())
    }

    /// Renders the envelope, tagging it with the request's id and
    /// attaching `Retry-After` when the error is a load-shedding one.
    pub fn to_response(&self, request_id: u64) -> Response {
        let body = json!({
            "api_version": API_VERSION,
            "error": {
                "code": self.code,
                "message": self.message.clone(),
                "retryable": self.retryable,
                "request_id": request_id,
            },
        });
        let mut response = Response::json(self.status, &body);
        if let Some(secs) = self.retry_after {
            response = response.with_header("Retry-After", secs.to_string());
        }
        response
    }
}

/// `(status, code)` of a catalog failure: an unknown name is the
/// client's mistake; a registered CSV that fails to load is ours.
pub fn catalog_code(e: &CatalogError) -> (u16, &'static str) {
    match e {
        CatalogError::Unknown(_) => (404, "dataset_not_found"),
        CatalogError::Load { .. } => (500, "dataset_load_failed"),
    }
}

/// `(status, code)` of a pipeline failure. Degenerate inputs are 400
/// `invalid_input`; cancellation distinguishes deadline from explicit;
/// everything else is an internal inconsistency (the warm path
/// pre-checks fingerprints, so an artifact error reaching a client is
/// never the client's fault).
pub fn pipeline_code(e: &PipelineError) -> (u16, &'static str) {
    match e {
        PipelineError::Cancelled { deadline_exceeded: true } => (408, "deadline_exceeded"),
        PipelineError::Cancelled { deadline_exceeded: false } => (408, "cancelled"),
        PipelineError::EmptyTable
        | PipelineError::NoMeasures
        | PipelineError::NoAttributes
        | PipelineError::InvalidConfig(_)
        | PipelineError::AnchorOutOfRange { .. } => (400, "invalid_input"),
        PipelineError::PlanGap { .. } | PipelineError::Engine(_) | PipelineError::Artifact(_) => {
            (500, "internal")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn envelope_of(e: &ApiError) -> Value {
        serde_json::from_str(&e.to_response(7).body).unwrap()
    }

    #[test]
    fn envelope_carries_version_code_retryability_and_request_id() {
        let v = envelope_of(&ApiError::queue_full());
        assert_eq!(v["api_version"], 1);
        assert_eq!(v["error"]["code"], "queue_full");
        assert_eq!(v["error"]["retryable"], true);
        assert_eq!(v["error"]["request_id"], 7);
        assert!(v["error"]["message"].as_str().unwrap().contains("queue"));
    }

    #[test]
    fn load_shedding_errors_carry_retry_after() {
        let r = ApiError::queue_full().to_response(1);
        assert_eq!(r.status, 429);
        assert!(r.headers.iter().any(|(n, _)| *n == "Retry-After"));
        let r = ApiError::draining().to_response(1);
        assert_eq!(r.status, 503);
        assert!(r.headers.iter().any(|(n, v)| *n == "Retry-After" && !v.is_empty()));
        let r = ApiError::bad_request("nope").to_response(1);
        assert!(r.headers.is_empty(), "only load shedding advertises Retry-After");
    }

    #[test]
    fn parse_catalog_and_pipeline_errors_map_to_stable_codes() {
        assert_eq!(ApiError::from_parse(&ParseError::Malformed("x")).code, "bad_request");
        assert_eq!(ApiError::from_parse(&ParseError::BodyTooLarge(9)).status, 413);
        assert_eq!(catalog_code(&CatalogError::Unknown("d".into())), (404, "dataset_not_found"));
        assert_eq!(
            catalog_code(&CatalogError::Load { name: "d".into(), message: "io".into() }),
            (500, "dataset_load_failed")
        );
        assert_eq!(
            pipeline_code(&PipelineError::Cancelled { deadline_exceeded: true }),
            (408, "deadline_exceeded")
        );
        assert_eq!(
            pipeline_code(&PipelineError::Cancelled { deadline_exceeded: false }),
            (408, "cancelled")
        );
        assert_eq!(pipeline_code(&PipelineError::EmptyTable), (400, "invalid_input"));
        assert_eq!(pipeline_code(&PipelineError::Artifact("stale".into())), (500, "internal"));
    }

    #[test]
    fn every_envelope_validates_against_the_schema() {
        let schema_text = std::fs::read_to_string(
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../schemas/api_error.schema.json"),
        )
        .unwrap();
        let schema: Value = serde_json::from_str(&schema_text).unwrap();
        for e in [
            ApiError::bad_request("x"),
            ApiError::not_found("y"),
            ApiError::method_not_allowed(),
            ApiError::queue_full(),
            ApiError::rate_limited(3),
            ApiError::draining(),
            ApiError::internal("z"),
            ApiError::new(500, "job_panicked", "pipeline worker panicked"),
            ApiError::from_parse(&ParseError::BodyTooLarge(2_000_000)),
            ApiError::from_catalog(&CatalogError::Unknown("d".into())),
            ApiError::from_pipeline(&PipelineError::Cancelled { deadline_exceeded: true }),
            ApiError::from_pipeline(&PipelineError::EmptyTable),
            ApiError::new(409, "conflict", "session busy"),
        ] {
            let v = envelope_of(&e);
            if let Err(violations) = cn_obs::schema::validate(&v, &schema) {
                panic!("{} envelope violates the schema: {violations:?}", e.code);
            }
        }
    }
}
