//! The service: a fixed HTTP worker pool over `std::net::TcpListener`,
//! a bounded generation queue with its own pipeline workers, and a
//! graceful-shutdown handle.
//!
//! Request flow for `POST /v1/notebooks`: the HTTP worker validates the
//! body, registers the job, submits it to the bounded queue (HTTP 429
//! right here when admission control refuses), then blocks on the job's
//! completion signal and renders whatever terminal state the pipeline
//! worker recorded. Deadlines ride along as a [`CancelToken`] that the
//! pipeline polls between phases and inside the permutation-test loop.

use crate::catalog::Catalog;
use crate::error::ApiError;
use crate::http::{read_request, ParseError, Request, Response};
use crate::indexer::ServeIndex;
use crate::jobs::{execute, CompletedJob, Job, JobSpec, JobStatus, JobStore};
use crate::queue::{JobQueue, SubmitError};
use cn_fault::RetryPolicy;
use cn_index::ScoreKind;
use cn_interest::DistanceWeights;
use cn_notebook::to_markdown;
use cn_obs::{CancelToken, Metric, Registry};
use serde_json::{json, Map, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Threads answering HTTP connections.
    pub http_workers: usize,
    /// Threads running generation jobs.
    pub pipeline_workers: usize,
    /// Bounded generation-queue depth (admission control).
    pub queue_depth: usize,
    /// LRU capacity of the dataset catalog.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not set `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Worker threads *inside* each pipeline run.
    pub run_threads: usize,
    /// Warm-start artifact store directory; `None` disables the store
    /// and the background precompute worker.
    pub store_dir: Option<PathBuf>,
    /// Retry policy for store reads and writes (transient I/O only;
    /// corrupt artifacts are quarantined, not retried).
    pub store_retry: RetryPolicy,
    /// Consecutive post-retry store I/O failures before the store flips
    /// to the degraded (fail-fast, cold-serving) state.
    pub degrade_after: u32,
    /// CNIDX similarity-index file; `None` disables the index, the
    /// background indexer, `GET /v1/search`, `GET
    /// /v1/notebooks/{id}/similar`, and the `use_index` continuation
    /// knob.
    pub index_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            pipeline_workers: 2,
            queue_depth: 16,
            cache_capacity: 8,
            default_deadline: None,
            run_threads: 2,
            store_dir: None,
            store_retry: RetryPolicy::default(),
            degrade_after: 2,
            index_path: None,
        }
    }
}

struct Shared {
    config: ServeConfig,
    catalog: Catalog,
    store: JobStore,
    queue: JobQueue<Job>,
    global: Arc<Registry>,
    /// The similarity index; `None` when no [`ServeConfig::index_path`]
    /// is configured.
    index: Option<Arc<ServeIndex>>,
    draining: AtomicBool,
    /// Monotonic request ids (from 1): every parsed request gets one, it
    /// tags the request's span in the global registry, and every error
    /// envelope echoes it back to the client.
    next_request_id: AtomicU64,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`Handle::shutdown`] then [`Handle::join`].
pub struct Handle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Handle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-global metrics registry.
    pub fn registry(&self) -> Arc<Registry> {
        self.shared.global.clone()
    }

    /// Starts a graceful shutdown: new generation work is refused with
    /// HTTP 503, already-admitted jobs drain, workers then exit.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Disconnect the precompute worker's build channel so its
        // receiver drains and the thread exits (after any in-flight
        // build finishes).
        self.shared.catalog.close_build_trigger();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for every server thread to exit ([`Handle::shutdown`] first).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `config.addr`, spawns the worker pools, and returns the handle.
///
/// # Errors
/// The bind error, stringified, when the address is unavailable.
pub fn start(config: ServeConfig, mut catalog: Catalog) -> Result<Handle, String> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    if let Some(dir) = &config.store_dir {
        catalog
            .set_store(dir)
            .map_err(|e| format!("cannot open artifact store at {}: {e}", dir.display()))?;
    }
    catalog.set_degrade_after(config.degrade_after);
    // The catalog was built against the server registry; reuse it so
    // catalog counters and job counters land in one place.
    let global = catalog.registry();
    // Open (or cold-rebuild) the similarity index before taking
    // traffic: a damaged file quarantines here, not mid-request.
    let index = config.index_path.clone().map(|path| Arc::new(ServeIndex::open(path, &global)));
    let shared = Arc::new(Shared {
        queue: JobQueue::new(config.queue_depth),
        config,
        catalog,
        store: JobStore::new(),
        global,
        index,
        draining: AtomicBool::new(false),
        next_request_id: AtomicU64::new(1),
    });

    let mut threads = Vec::new();
    // Precompute worker: one thread scanning the store and building
    // warm-start artifacts, fed by the catalog's build channel. Spawned
    // only when a store is configured, so storeless deployments behave
    // (and count) exactly as before.
    if shared.catalog.store().is_some() {
        let (tx, rx) = mpsc::channel();
        shared.catalog.set_build_trigger(tx);
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("cn-serve-precompute".to_string())
                .spawn(move || {
                    crate::precompute::worker_loop(
                        &shared.catalog,
                        &shared.global,
                        shared.config.run_threads,
                        &shared.config.store_retry,
                        &rx,
                    );
                })
                .map_err(|e| e.to_string())?,
        );
    }
    // Background indexer: one thread registering completed notebooks
    // into the similarity index, fed by the pipeline workers. The
    // senders live in the worker closures, so when the workers exit at
    // queue close the channel disconnects and the indexer drains and
    // stops — the same lifecycle as the precompute worker.
    let index_tx = match &shared.index {
        Some(index) => {
            let (tx, rx) = mpsc::channel::<cn_index::Document>();
            let index = index.clone();
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("cn-serve-index".to_string())
                    .spawn(move || {
                        crate::indexer::worker_loop(&index, &shared.global, &rx);
                    })
                    .map_err(|e| e.to_string())?,
            );
            Some(tx)
        }
        None => None,
    };
    // Pipeline workers: drain the bounded queue until close + empty.
    for i in 0..shared.config.pipeline_workers.max(1) {
        let shared = shared.clone();
        let index_tx = index_tx.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("cn-serve-pipeline-{i}"))
                .spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        let id = job.spec.id;
                        execute(
                            job,
                            &shared.catalog,
                            &shared.store,
                            &shared.global,
                            shared.config.run_threads,
                            &shared.config.store_retry,
                        );
                        // Hand the finished notebook to the indexer; a
                        // failed job has nothing to register, and a
                        // closed channel just means shutdown.
                        if let Some(tx) = &index_tx {
                            if let Some(JobStatus::Done(c)) = shared.store.get(id) {
                                let doc = cn_pipeline::index_document(
                                    &c.table,
                                    c.session.run(),
                                    &c.dataset,
                                );
                                let _ = tx.send(doc);
                            }
                        }
                    }
                })
                .map_err(|e| e.to_string())?,
        );
    }
    // Only the worker clones keep the index channel alive.
    drop(index_tx);
    // HTTP workers feed from an internal connection queue.
    let connections: Arc<JobQueue<TcpStream>> = Arc::new(JobQueue::new(1024));
    for i in 0..shared.config.http_workers.max(1) {
        let shared = shared.clone();
        let connections = connections.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("cn-serve-http-{i}"))
                .spawn(move || {
                    while let Some(mut stream) = connections.pop() {
                        serve_connection(&mut stream, &shared);
                    }
                })
                .map_err(|e| e.to_string())?,
        );
    }
    // Accept loop: hand sockets to the HTTP pool until shutdown.
    {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("cn-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // On a saturated or closing pool the socket simply
                        // drops, which the client sees as a reset.
                        let _ = connections.submit(stream);
                    }
                    connections.close();
                })
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(Handle { addr, shared, threads })
}

fn serve_connection(stream: &mut TcpStream, shared: &Shared) {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let response = match read_request(stream) {
        Ok(request) => {
            shared.global.inc(Metric::HttpRequests);
            // The request's span in the server-global registry, tagged
            // with the id every envelope echoes — the error a client
            // holds and the trace the operator reads share one number.
            let _span = shared.global.span_with_value("request", request_id);
            route(&request, shared, request_id)
        }
        // Nothing sensible to say to a dead socket.
        Err(ParseError::Io(_)) => return,
        Err(e) => {
            let _span = shared.global.span_with_value("request", request_id);
            ApiError::from_parse(&e).to_response(request_id)
        }
    };
    if response.write(stream).is_err() {
        // The client vanished mid-response: count it, the body is lost.
        shared.global.inc(Metric::ResponsesWriteFailed);
    }
}

fn route(request: &Request, shared: &Shared, request_id: u64) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => handle_healthz(shared),
        ("GET", ["metrics"]) => handle_metrics(shared),
        ("GET", ["v1", "datasets"]) => handle_datasets(shared),
        ("GET", ["v1", "search"]) => handle_search(request, shared, request_id),
        ("POST", ["v1", "notebooks"]) => handle_generate(request, shared, request_id),
        ("GET", ["v1", "notebooks", id]) => handle_get_notebook(id, shared, request_id),
        ("GET", ["v1", "notebooks", id, "similar"]) => {
            handle_similar(id, request, shared, request_id)
        }
        ("POST", ["v1", "sessions", id, "continue"]) => {
            handle_continue(id, request, shared, request_id)
        }
        ("GET", _) | ("POST", _) => ApiError::not_found("no such route").to_response(request_id),
        _ => ApiError::method_not_allowed().to_response(request_id),
    }
}

fn handle_healthz(shared: &Shared) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    let degraded = shared.catalog.store_degraded();
    let status = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    Response::json(
        200,
        &json!({
            "status": status,
            "jobs_queued": shared.queue.len() as u64,
        }),
    )
}

fn handle_metrics(shared: &Shared) -> Response {
    Response { status: 200, body: shared.global.report().to_json_string(), headers: Vec::new() }
}

fn handle_datasets(shared: &Shared) -> Response {
    let store_health = if shared.catalog.store_degraded() { "degraded" } else { "ok" };
    let datasets: Vec<Value> = shared
        .catalog
        .list()
        .into_iter()
        .map(|(name, loaded)| {
            let mut d = Map::new();
            let store = shared.catalog.store_status(&name);
            d.insert("name".to_string(), Value::String(name));
            d.insert("loaded".to_string(), Value::Bool(loaded));
            match store {
                Some((status, fingerprint)) => {
                    d.insert("store".to_string(), Value::String(status.name().to_string()));
                    d.insert(
                        "fingerprint".to_string(),
                        fingerprint.map(Value::String).unwrap_or(Value::Null),
                    );
                }
                None => {
                    d.insert("store".to_string(), Value::String("disabled".to_string()));
                }
            }
            Value::Object(d)
        })
        .collect();
    Response::json(200, &json!({ "datasets": datasets, "store_health": store_health }))
}

/// Reads a non-negative integer field, tolerating its absence.
fn u64_field(body: &Value, key: &str) -> Option<u64> {
    body.get(key).and_then(Value::as_u64)
}

/// Renders a terminal [`JobFailure`] as the error envelope.
fn failure_response(f: &crate::jobs::JobFailure, request_id: u64) -> Response {
    ApiError {
        status: f.status,
        code: f.code,
        message: f.message.clone(),
        retryable: f.retryable,
        retry_after: None,
    }
    .to_response(request_id)
}

fn handle_generate(request: &Request, shared: &Shared, request_id: u64) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return ApiError::draining().to_response(request_id);
    }
    let Some(body) = request.json() else {
        return ApiError::bad_request("request body must be a JSON object").to_response(request_id);
    };
    let Some(dataset) = body.get("dataset").and_then(Value::as_str) else {
        return ApiError::bad_request("missing required field `dataset`").to_response(request_id);
    };
    // Fail unknown names before burning a queue slot.
    if !shared.catalog.contains(dataset) {
        return ApiError::new(404, "dataset_not_found", format!("unknown dataset `{dataset}`"))
            .to_response(request_id);
    }
    let deadline = match u64_field(&body, "deadline_ms") {
        Some(ms) => Some(Duration::from_millis(ms)),
        None => shared.config.default_deadline,
    };
    let cancel = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let id = shared.store.create();
    let spec = JobSpec {
        id,
        request_id,
        dataset: dataset.to_string(),
        notebook_len: u64_field(&body, "len").unwrap_or(5) as usize,
        n_permutations: u64_field(&body, "perms").unwrap_or(200).max(1) as usize,
        seed: u64_field(&body, "seed").unwrap_or(0),
        epsilon_d: body.get("epsilon_d").and_then(Value::as_f64),
    };
    let (done, finished) = mpsc::channel();
    match shared.queue.submit(Job { spec, cancel, done }) {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            shared.store.remove(id);
            shared.global.inc(Metric::AdmissionRejected);
            return ApiError::queue_full().to_response(request_id);
        }
        Err(SubmitError::Closed) => {
            shared.store.remove(id);
            return ApiError::draining().to_response(request_id);
        }
    }
    // Wait for the pipeline worker to drive the job to a terminal state.
    let _ = finished.recv();
    match shared.store.get(id) {
        Some(JobStatus::Done(completed)) => {
            Response::json(200, &notebook_payload(id, request_id, &completed))
        }
        Some(JobStatus::Failed(f)) => failure_response(&f, request_id),
        _ => ApiError::internal("job finished without a terminal state").to_response(request_id),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn handle_get_notebook(raw_id: &str, shared: &Shared, request_id: u64) -> Response {
    let Some(id) = parse_id(raw_id) else {
        return ApiError::bad_request("notebook id must be an integer").to_response(request_id);
    };
    match shared.store.get(id) {
        None => ApiError::not_found(format!("no notebook job {id}")).to_response(request_id),
        Some(JobStatus::Done(completed)) => {
            Response::json(200, &notebook_payload(id, request_id, &completed))
        }
        Some(JobStatus::Failed(f)) => Response::json(
            200,
            &json!({
                "id": id,
                "status": "failed",
                "http_status": f.status,
                "error": {
                    "code": f.code,
                    "message": f.message,
                    "retryable": f.retryable,
                    "request_id": request_id,
                },
            }),
        ),
        Some(status) => Response::json(200, &json!({ "id": id, "status": status.name() })),
    }
}

fn notebook_payload(id: u64, request_id: u64, completed: &crate::jobs::CompletedJob) -> Value {
    let run = completed.session.run();
    json!({
        "api_version": crate::error::API_VERSION,
        "id": id,
        "request_id": request_id,
        "status": "done",
        "dataset": completed.dataset.clone(),
        "entries": run.notebook.len() as u64,
        "n_tested": run.n_tested as u64,
        "n_significant": run.n_significant as u64,
        "total_interest": run.solution.total_interest,
        "markdown": to_markdown(&run.notebook),
    })
}

/// Reads the shared `k` / `mode` search parameters (defaults: 5,
/// cosine).
fn search_params(request: &Request) -> Result<(usize, ScoreKind), ApiError> {
    let k = match request.query_param("k") {
        None => 5,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return Err(ApiError::bad_request("`k` must be a positive integer")),
        },
    };
    let kind = match request.query_param("mode") {
        None => ScoreKind::Cosine,
        Some(raw) => match ScoreKind::parse(&raw) {
            Some(kind) => kind,
            None => return Err(ApiError::bad_request("`mode` must be `cosine` or `jaccard`")),
        },
    };
    Ok((k, kind))
}

fn hits_json(hits: &[cn_index::Hit]) -> Vec<Value> {
    hits.iter()
        .map(|h| {
            json!({
                "id": h.id.clone(),
                "dataset": h.dataset.clone(),
                "title": h.title.clone(),
                "entries": h.entries,
                "score": h.score,
            })
        })
        .collect()
}

fn handle_search(request: &Request, shared: &Shared, request_id: u64) -> Response {
    let Some(index) = &shared.index else {
        return ApiError::not_found("the similarity index is not enabled").to_response(request_id);
    };
    let Some(q) = request.query_param("q").filter(|q| !q.trim().is_empty()) else {
        return ApiError::bad_request("missing required query parameter `q`")
            .to_response(request_id);
    };
    let (k, kind) = match search_params(request) {
        Ok(p) => p,
        Err(e) => return e.to_response(request_id),
    };
    let terms = cn_index::parse_query(&q);
    let hits = index.search(&terms, k, kind, &shared.global);
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "request_id": request_id,
            "query": q,
            "k": k as u64,
            "mode": kind.name(),
            "hits": hits_json(&hits),
        }),
    )
}

fn handle_similar(raw_id: &str, request: &Request, shared: &Shared, request_id: u64) -> Response {
    let Some(index) = &shared.index else {
        return ApiError::not_found("the similarity index is not enabled").to_response(request_id);
    };
    let Some(id) = parse_id(raw_id) else {
        return ApiError::bad_request("notebook id must be an integer").to_response(request_id);
    };
    let completed = match shared.store.get(id) {
        Some(JobStatus::Done(c)) => c,
        Some(status) => {
            return ApiError::new(
                409,
                "conflict",
                format!("notebook {id} is {}; only done jobs have a signature", status.name()),
            )
            .to_response(request_id)
        }
        None => {
            return ApiError::not_found(format!("no notebook job {id}")).to_response(request_id)
        }
    };
    let (k, kind) = match search_params(request) {
        Ok(p) => p,
        Err(e) => return e.to_response(request_id),
    };
    let doc =
        cn_pipeline::index_document(&completed.table, completed.session.run(), &completed.dataset);
    let hits = index.similar_to(&doc, k, kind, &shared.global);
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "request_id": request_id,
            "id": id,
            "anchor": doc.id,
            "k": k as u64,
            "mode": kind.name(),
            "hits": hits_json(&hits),
        }),
    )
}

/// The `use_index == true` continuation: suggestions reranked by
/// evidence from similar prior notebooks in the corpus, the notebook
/// built from the evidence-chosen set. The default path never enters
/// here, so its output stays byte-identical with the index enabled.
fn continue_indexed(
    id: u64,
    completed: &CompletedJob,
    index: &ServeIndex,
    anchor: usize,
    k: usize,
    shared: &Shared,
    request_id: u64,
) -> Response {
    let run = completed.session.run();
    let own = cn_pipeline::index_document(&completed.table, run, &completed.dataset);
    let weights = DistanceWeights::default();
    let reranked = index.with_index(&shared.global, |ix| {
        cn_pipeline::rerank_suggestions(&completed.table, run, ix, &own.id, anchor, k, &weights)
    });
    let reranked = match reranked {
        Ok(r) => r,
        Err(e) => return ApiError::from_pipeline(&e).to_response(request_id),
    };
    let notebook =
        cn_pipeline::continuation_from_reranked(&completed.table, run, anchor, &reranked);
    let suggestions: Vec<Value> = reranked
        .iter()
        .map(|r| {
            json!({
                "query": r.suggestion.query as u64,
                "distance": r.suggestion.distance,
                "interest": r.suggestion.interest,
                "score": r.suggestion.score,
                "evidence": r.evidence,
                "boosted": r.boosted,
            })
        })
        .collect();
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "id": id,
            "request_id": request_id,
            "anchor": anchor as u64,
            "use_index": true,
            "suggestions": suggestions,
            "markdown": to_markdown(&notebook),
        }),
    )
}

fn handle_continue(raw_id: &str, request: &Request, shared: &Shared, request_id: u64) -> Response {
    let Some(id) = parse_id(raw_id) else {
        return ApiError::bad_request("session id must be an integer").to_response(request_id);
    };
    let completed = match shared.store.get(id) {
        Some(JobStatus::Done(c)) => c,
        Some(status) => {
            return ApiError::new(
                409,
                "conflict",
                format!("session {id} is {}; only done jobs can continue", status.name()),
            )
            .to_response(request_id)
        }
        None => return ApiError::not_found(format!("no session {id}")).to_response(request_id),
    };
    let body = request.json().unwrap_or(Value::Null);
    let anchor = u64_field(&body, "anchor").unwrap_or(0) as usize;
    let k = u64_field(&body, "k").unwrap_or(3) as usize;
    if body.get("use_index").and_then(Value::as_bool).unwrap_or(false) {
        let Some(index) = &shared.index else {
            return ApiError::bad_request(
                "`use_index` requires the similarity index to be enabled",
            )
            .to_response(request_id);
        };
        return continue_indexed(id, &completed, index, anchor, k, shared, request_id);
    }
    let suggestions = match completed.session.suggest(anchor, k) {
        Ok(s) => s,
        Err(e) => return ApiError::from_pipeline(&e).to_response(request_id),
    };
    let notebook = match completed.session.continue_notebook(&completed.table, anchor, k) {
        Ok(nb) => nb,
        Err(e) => return ApiError::from_pipeline(&e).to_response(request_id),
    };
    let suggestions: Vec<Value> = suggestions
        .iter()
        .map(|s| {
            json!({
                "query": s.query as u64,
                "distance": s.distance,
                "interest": s.interest,
                "score": s.score,
            })
        })
        .collect();
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "id": id,
            "request_id": request_id,
            "anchor": anchor as u64,
            "suggestions": suggestions,
            "markdown": to_markdown(&notebook),
        }),
    )
}
