//! The service: a fixed HTTP worker pool over `std::net::TcpListener`,
//! a multi-tenant fair-share scheduler feeding the pipeline workers,
//! and a graceful-shutdown handle.
//!
//! Request flow for `POST /v1/notebooks`: the HTTP worker validates the
//! body, registers the job, and submits it to the [`cn_sched`]
//! scheduler (HTTP 429 right here when admission control — per-tenant
//! backlog bound or token bucket — refuses), then blocks on the job's
//! completion signal and renders whatever terminal state the pipeline
//! worker recorded. Deadlines ride along twice: as a [`CancelToken`]
//! that the pipeline polls between phases and inside the
//! permutation-test loop, and as a scheduler deadline that sheds a job
//! still queued past it without ever dispatching the pipeline.
//!
//! With no [`ServeConfig::sched`] policy the scheduler collapses to the
//! legacy single bounded FIFO: one tenant, no rate limiting, no
//! coalescing — responses are byte-identical to the pre-scheduler
//! server (pinned by `tests/sched.rs`). A policy file turns on
//! per-tenant weights (`X-CN-Tenant` header), token buckets, and
//! single-flight coalescing of identical concurrent requests.

use crate::catalog::Catalog;
use crate::error::ApiError;
use crate::http::{read_request, ParseError, Request, Response};
use crate::indexer::ServeIndex;
use crate::jobs::{execute, CompletedJob, Job, JobSpec, JobStatus, JobStore};
use crate::queue::JobQueue;
use cn_fault::RetryPolicy;
use cn_index::ScoreKind;
use cn_interest::DistanceWeights;
use cn_notebook::to_markdown;
use cn_obs::{CancelToken, Gauge, Hist, Metric, Registry};
use cn_sched::{
    Admitted, Class, Clock, Dispatch, JobMeta, Rejection, SchedConfig, Scheduler, SystemClock,
};
use serde_json::{json, Map, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Threads answering HTTP connections.
    pub http_workers: usize,
    /// Threads running generation jobs.
    pub pipeline_workers: usize,
    /// Bounded generation-queue depth (admission control).
    pub queue_depth: usize,
    /// LRU capacity of the dataset catalog.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not set `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Worker threads *inside* each pipeline run.
    pub run_threads: usize,
    /// Warm-start artifact store directory; `None` disables the store
    /// and the background precompute worker.
    pub store_dir: Option<PathBuf>,
    /// Retry policy for store reads and writes (transient I/O only;
    /// corrupt artifacts are quarantined, not retried).
    pub store_retry: RetryPolicy,
    /// Consecutive post-retry store I/O failures before the store flips
    /// to the degraded (fail-fast, cold-serving) state.
    pub degrade_after: u32,
    /// CNIDX similarity-index file; `None` disables the index, the
    /// background indexer, `GET /v1/search`, `GET
    /// /v1/notebooks/{id}/similar`, and the `use_index` continuation
    /// knob.
    pub index_path: Option<PathBuf>,
    /// Multi-tenant scheduling policy (`cn serve --sched-config`).
    /// `None` runs the legacy-equivalent single queue: one tenant
    /// bounded by [`ServeConfig::queue_depth`], no rate limiting, no
    /// request coalescing.
    pub sched: Option<SchedConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            pipeline_workers: 2,
            queue_depth: 16,
            cache_capacity: 8,
            default_deadline: None,
            run_threads: 2,
            store_dir: None,
            store_retry: RetryPolicy::default(),
            degrade_after: 2,
            index_path: None,
            sched: None,
        }
    }
}

struct Shared {
    config: ServeConfig,
    catalog: Catalog,
    store: JobStore,
    sched: Scheduler<Job, SystemClock>,
    /// True when a [`ServeConfig::sched`] policy was supplied: enables
    /// the `X-CN-Tenant` header and single-flight coalescing. Without
    /// it both stay off, keeping the server bit-compatible with the
    /// pre-scheduler FIFO.
    sched_enabled: bool,
    global: Arc<Registry>,
    /// The similarity index; `None` when no [`ServeConfig::index_path`]
    /// is configured.
    index: Option<Arc<ServeIndex>>,
    draining: AtomicBool,
    /// Monotonic request ids (from 1): every parsed request gets one, it
    /// tags the request's span in the global registry, and every error
    /// envelope echoes it back to the client.
    next_request_id: AtomicU64,
}

/// A running server; dropping the handle does *not* stop it — call
/// [`Handle::shutdown`] then [`Handle::join`].
pub struct Handle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Handle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-global metrics registry.
    pub fn registry(&self) -> Arc<Registry> {
        self.shared.global.clone()
    }

    /// Starts a graceful shutdown: new generation work is refused with
    /// HTTP 503, already-admitted jobs drain, workers then exit.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.sched.close();
        // Disconnect the precompute worker's build channel so its
        // receiver drains and the thread exits (after any in-flight
        // build finishes).
        self.shared.catalog.close_build_trigger();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for every server thread to exit ([`Handle::shutdown`] first).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `config.addr`, spawns the worker pools, and returns the handle.
///
/// # Errors
/// The bind error, stringified, when the address is unavailable.
pub fn start(config: ServeConfig, mut catalog: Catalog) -> Result<Handle, String> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    if let Some(dir) = &config.store_dir {
        catalog
            .set_store(dir)
            .map_err(|e| format!("cannot open artifact store at {}: {e}", dir.display()))?;
    }
    catalog.set_degrade_after(config.degrade_after);
    // The catalog was built against the server registry; reuse it so
    // catalog counters and job counters land in one place.
    let global = catalog.registry();
    // Open (or cold-rebuild) the similarity index before taking
    // traffic: a damaged file quarantines here, not mid-request.
    let index = config.index_path.clone().map(|path| Arc::new(ServeIndex::open(path, &global)));
    // No policy file: collapse to the legacy single bounded FIFO (one
    // tenant, the old global queue_depth bound, no rate limit, no
    // coalescing).
    let sched_enabled = config.sched.is_some();
    let sched_config =
        config.sched.clone().unwrap_or_else(|| SchedConfig::single_queue(config.queue_depth));
    let shared = Arc::new(Shared {
        sched: Scheduler::new(sched_config, SystemClock::new()),
        sched_enabled,
        config,
        catalog,
        store: JobStore::new(),
        global,
        index,
        draining: AtomicBool::new(false),
        next_request_id: AtomicU64::new(1),
    });

    let mut threads = Vec::new();
    // Precompute worker: one thread scanning the store and building
    // warm-start artifacts, fed by the catalog's build channel. Spawned
    // only when a store is configured, so storeless deployments behave
    // (and count) exactly as before.
    if shared.catalog.store().is_some() {
        let (tx, rx) = mpsc::channel();
        shared.catalog.set_build_trigger(tx);
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("cn-serve-precompute".to_string())
                .spawn(move || {
                    crate::precompute::worker_loop(
                        &shared.catalog,
                        &shared.global,
                        shared.config.run_threads,
                        &shared.config.store_retry,
                        &rx,
                    );
                })
                .map_err(|e| e.to_string())?,
        );
    }
    // Background indexer: one thread registering completed notebooks
    // into the similarity index, fed by the pipeline workers. The
    // senders live in the worker closures, so when the workers exit at
    // queue close the channel disconnects and the indexer drains and
    // stops — the same lifecycle as the precompute worker.
    let index_tx = match &shared.index {
        Some(index) => {
            let (tx, rx) = mpsc::channel::<cn_index::Document>();
            let index = index.clone();
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name("cn-serve-index".to_string())
                    .spawn(move || {
                        crate::indexer::worker_loop(&index, &shared.global, &rx);
                    })
                    .map_err(|e| e.to_string())?,
            );
            Some(tx)
        }
        None => None,
    };
    // Pipeline workers: drain the scheduler until close + empty.
    for i in 0..shared.config.pipeline_workers.max(1) {
        let shared = shared.clone();
        let index_tx = index_tx.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("cn-serve-pipeline-{i}"))
                .spawn(move || {
                    while let Some(dispatch) = shared.sched.pop() {
                        run_dispatch(dispatch, &shared, &index_tx);
                    }
                })
                .map_err(|e| e.to_string())?,
        );
    }
    // Only the worker clones keep the index channel alive.
    drop(index_tx);
    // HTTP workers feed from an internal connection queue.
    let connections: Arc<JobQueue<TcpStream>> = Arc::new(JobQueue::new(1024));
    for i in 0..shared.config.http_workers.max(1) {
        let shared = shared.clone();
        let connections = connections.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("cn-serve-http-{i}"))
                .spawn(move || {
                    while let Some(mut stream) = connections.pop() {
                        serve_connection(&mut stream, &shared);
                    }
                })
                .map_err(|e| e.to_string())?,
        );
    }
    // Accept loop: hand sockets to the HTTP pool until shutdown.
    {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("cn-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // On a saturated or closing pool the socket simply
                        // drops, which the client sees as a reset.
                        let _ = connections.submit(stream);
                    }
                    connections.close();
                })
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(Handle { addr, shared, threads })
}

/// Runs one scheduler dispatch on a pipeline worker.
///
/// A dispatch the scheduler shed as expired is *still* executed: its
/// cancel token already fired, so [`execute`] fails fast with the same
/// 408 `deadline_exceeded` envelope the pre-scheduler server produced,
/// without loading any data. Afterwards the leader's terminal state
/// fans out to every coalesced follower, and a completed notebook
/// feeds the background indexer.
fn run_dispatch(
    dispatch: Dispatch<Job>,
    shared: &Shared,
    index_tx: &Option<mpsc::Sender<cn_index::Document>>,
) {
    let Dispatch { item: job, class, wait_us, expired, coalesce_key, .. } = dispatch;
    let id = job.spec.id;
    if expired {
        shared.global.inc(Metric::SchedShedExpired);
    } else {
        shared.global.inc(Metric::SchedDispatched);
        let wait_hist = match class {
            Class::Interactive => Hist::SchedWaitInteractiveMicros,
            Class::Batch => Hist::SchedWaitBatchMicros,
        };
        shared.global.record(wait_hist, wait_us);
    }
    {
        let _span = shared.global.span_with_value("sched_dispatch", wait_us);
        execute(
            job,
            &shared.catalog,
            &shared.store,
            &shared.global,
            shared.config.run_threads,
            &shared.config.store_retry,
        );
    }
    // Followers of a coalesced request alias the leader's terminal
    // state under their own job ids, then their waiting HTTP workers
    // wake. The scheduler returns them only now, so a request arriving
    // mid-run still attaches before this point or queues fresh after.
    let status = shared.store.get(id);
    for follower in shared.sched.finish(coalesce_key, expired) {
        if let Some(status) = &status {
            shared.store.set(follower.spec.id, status.clone());
        }
        let _ = follower.done.send(());
    }
    // Hand the finished notebook to the indexer; a failed job has
    // nothing to register, and a closed channel just means shutdown.
    if let Some(tx) = index_tx {
        if let Some(JobStatus::Done(c)) = shared.store.get(id) {
            let doc = cn_pipeline::index_document(&c.table, c.session.run(), &c.dataset);
            let _ = tx.send(doc);
        }
    }
}

fn serve_connection(stream: &mut TcpStream, shared: &Shared) {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let response = match read_request(stream) {
        Ok(request) => {
            shared.global.inc(Metric::HttpRequests);
            // The request's span in the server-global registry, tagged
            // with the id every envelope echoes — the error a client
            // holds and the trace the operator reads share one number.
            let _span = shared.global.span_with_value("request", request_id);
            route(&request, shared, request_id)
        }
        // Nothing sensible to say to a dead socket.
        Err(ParseError::Io(_)) => return,
        Err(e) => {
            let _span = shared.global.span_with_value("request", request_id);
            ApiError::from_parse(&e).to_response(request_id)
        }
    };
    if response.write(stream).is_err() {
        // The client vanished mid-response: count it, the body is lost.
        shared.global.inc(Metric::ResponsesWriteFailed);
    }
}

fn route(request: &Request, shared: &Shared, request_id: u64) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => handle_healthz(shared),
        ("GET", ["metrics"]) => handle_metrics(shared),
        ("GET", ["v1", "datasets"]) => handle_datasets(shared),
        ("GET", ["v1", "sched"]) => handle_sched(shared, request_id),
        ("GET", ["v1", "search"]) => handle_search(request, shared, request_id),
        ("POST", ["v1", "notebooks"]) => handle_generate(request, shared, request_id),
        ("GET", ["v1", "notebooks", id]) => handle_get_notebook(id, shared, request_id),
        ("GET", ["v1", "notebooks", id, "similar"]) => {
            handle_similar(id, request, shared, request_id)
        }
        ("POST", ["v1", "sessions", id, "continue"]) => {
            handle_continue(id, request, shared, request_id)
        }
        ("GET", _) | ("POST", _) => ApiError::not_found("no such route").to_response(request_id),
        _ => ApiError::method_not_allowed().to_response(request_id),
    }
}

fn handle_healthz(shared: &Shared) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    let degraded = shared.catalog.store_degraded();
    let status = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    Response::json(
        200,
        &json!({
            "status": status,
            "jobs_queued": shared.sched.queued_len() as u64,
        }),
    )
}

fn handle_metrics(shared: &Shared) -> Response {
    // Gauges are levels, not totals: refresh them from the scheduler at
    // scrape time so the report reflects the queue as it is now.
    shared.global.set_gauge(Gauge::QueueDepth, shared.sched.queued_len() as u64);
    shared.global.set_gauge(Gauge::InflightJobs, shared.sched.inflight() as u64);
    Response { status: 200, body: shared.global.report().to_json_string(), headers: Vec::new() }
}

fn handle_datasets(shared: &Shared) -> Response {
    let store_health = if shared.catalog.store_degraded() { "degraded" } else { "ok" };
    let datasets: Vec<Value> = shared
        .catalog
        .list()
        .into_iter()
        .map(|(name, loaded)| {
            let mut d = Map::new();
            let store = shared.catalog.store_status(&name);
            d.insert("name".to_string(), Value::String(name));
            d.insert("loaded".to_string(), Value::Bool(loaded));
            match store {
                Some((status, fingerprint)) => {
                    d.insert("store".to_string(), Value::String(status.name().to_string()));
                    d.insert(
                        "fingerprint".to_string(),
                        fingerprint.map(Value::String).unwrap_or(Value::Null),
                    );
                }
                None => {
                    d.insert("store".to_string(), Value::String("disabled".to_string()));
                }
            }
            Value::Object(d)
        })
        .collect();
    Response::json(200, &json!({ "datasets": datasets, "store_health": store_health }))
}

/// Reads a non-negative integer field, tolerating its absence.
fn u64_field(body: &Value, key: &str) -> Option<u64> {
    body.get(key).and_then(Value::as_u64)
}

/// Renders a terminal [`JobFailure`] as the error envelope.
fn failure_response(f: &crate::jobs::JobFailure, request_id: u64) -> Response {
    ApiError {
        status: f.status,
        code: f.code,
        message: f.message.clone(),
        retryable: f.retryable,
        retry_after: None,
    }
    .to_response(request_id)
}

fn handle_generate(request: &Request, shared: &Shared, request_id: u64) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return ApiError::draining().to_response(request_id);
    }
    let Some(body) = request.json() else {
        return ApiError::bad_request("request body must be a JSON object").to_response(request_id);
    };
    let Some(dataset) = body.get("dataset").and_then(Value::as_str) else {
        return ApiError::bad_request("missing required field `dataset`").to_response(request_id);
    };
    // Fail unknown names before burning a queue slot.
    if !shared.catalog.contains(dataset) {
        return ApiError::new(404, "dataset_not_found", format!("unknown dataset `{dataset}`"))
            .to_response(request_id);
    }
    let class = match body.get("class") {
        None => Class::Interactive,
        Some(Value::String(raw)) => match Class::parse(raw) {
            Some(class) => class,
            None => {
                return ApiError::bad_request("`class` must be `interactive` or `batch`")
                    .to_response(request_id)
            }
        },
        Some(_) => {
            return ApiError::bad_request("`class` must be a string").to_response(request_id)
        }
    };
    let deadline = match u64_field(&body, "deadline_ms") {
        Some(ms) => Some(Duration::from_millis(ms)),
        None => shared.config.default_deadline,
    };
    // The cancel token arms *before* the scheduler deadline is stamped,
    // so a job the scheduler sheds as expired always finds its token
    // already expired and fails fast with the usual 408 envelope.
    let cancel = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let id = shared.store.create();
    let spec = JobSpec {
        id,
        request_id,
        dataset: dataset.to_string(),
        notebook_len: u64_field(&body, "len").unwrap_or(5) as usize,
        n_permutations: u64_field(&body, "perms").unwrap_or(200).max(1) as usize,
        seed: u64_field(&body, "seed").unwrap_or(0),
        epsilon_d: body.get("epsilon_d").and_then(Value::as_f64),
    };
    // The `X-CN-Tenant` header and single-flight coalescing only apply
    // under an explicit scheduling policy; the legacy single queue
    // treats every request as the default tenant, never coalesced.
    let meta = JobMeta {
        tenant: if shared.sched_enabled {
            request.header("x-cn-tenant").unwrap_or("default").to_string()
        } else {
            "default".to_string()
        },
        class,
        deadline_us: deadline
            .map(|d| shared.sched.clock().now_us().saturating_add(d.as_micros() as u64)),
        coalesce_key: shared.sched_enabled.then(|| coalesce_key(&spec, deadline, class)),
    };
    let (done, finished) = mpsc::channel();
    match shared.sched.submit(Job { spec, cancel, done }, &meta) {
        Ok(Admitted::Queued) => {}
        Ok(Admitted::Coalesced) => shared.global.inc(Metric::SchedCoalesced),
        Err(Rejection::RateLimited { retry_after_secs }) => {
            shared.store.remove(id);
            shared.global.inc(Metric::SchedRejectedRate);
            return ApiError::rate_limited(retry_after_secs).to_response(request_id);
        }
        Err(Rejection::QueueFull) => {
            shared.store.remove(id);
            shared.global.inc(Metric::AdmissionRejected);
            return ApiError::queue_full().to_response(request_id);
        }
        Err(Rejection::Closed) => {
            shared.store.remove(id);
            return ApiError::draining().to_response(request_id);
        }
    }
    // Wait for the pipeline worker to drive the job to a terminal state.
    let _ = finished.recv();
    match shared.store.get(id) {
        Some(JobStatus::Done(completed)) => {
            Response::json(200, &notebook_payload(id, request_id, &completed))
        }
        Some(JobStatus::Failed(f)) => failure_response(&f, request_id),
        _ => ApiError::internal("job finished without a terminal state").to_response(request_id),
    }
}

/// 128-bit FNV-1a over exactly the request parameters that determine
/// the notebook bytes (plus deadline and class, so requests that could
/// time out differently never share a run). Job and request ids stay
/// out — they differ per request by construction.
fn coalesce_key(spec: &JobSpec, deadline: Option<Duration>, class: Class) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u128::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(spec.dataset.as_bytes());
    // Separator so `("ab", 1)` and `("a", ...)` cannot collide by
    // concatenation.
    eat(&[0xff]);
    eat(&(spec.notebook_len as u64).to_le_bytes());
    eat(&(spec.n_permutations as u64).to_le_bytes());
    eat(&spec.seed.to_le_bytes());
    eat(&spec.epsilon_d.map(f64::to_bits).unwrap_or(u64::MAX).to_le_bytes());
    eat(&deadline.map(|d| d.as_millis() as u64).unwrap_or(u64::MAX).to_le_bytes());
    eat(&[class as u8]);
    hash
}

/// `GET /v1/sched`: the scheduler's live snapshot — per-tenant queue
/// depths, token balances, dispatch totals — shaped by
/// `schemas/sched.schema.json`.
fn handle_sched(shared: &Shared, request_id: u64) -> Response {
    let snapshot = shared.sched.snapshot();
    let tenants: Vec<Value> = snapshot
        .tenants
        .iter()
        .map(|t| {
            json!({
                "name": t.name.clone(),
                "weight": t.weight,
                "rate": t.rate,
                "burst": t.burst,
                "tokens": t.tokens,
                "queued_interactive": t.queued[Class::Interactive as usize] as u64,
                "queued_batch": t.queued[Class::Batch as usize] as u64,
                "dispatched": t.dispatched,
            })
        })
        .collect();
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "request_id": request_id,
            "enabled": shared.sched_enabled,
            "queued": snapshot.queued as u64,
            "inflight": snapshot.inflight as u64,
            "totals": {
                "dispatched": snapshot.totals.dispatched,
                "shed_expired": snapshot.totals.shed_expired,
                "coalesced": snapshot.totals.coalesced,
                "rejected_rate": snapshot.totals.rejected_rate,
                "rejected_full": snapshot.totals.rejected_full,
            },
            "tenants": tenants,
        }),
    )
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn handle_get_notebook(raw_id: &str, shared: &Shared, request_id: u64) -> Response {
    let Some(id) = parse_id(raw_id) else {
        return ApiError::bad_request("notebook id must be an integer").to_response(request_id);
    };
    match shared.store.get(id) {
        None => ApiError::not_found(format!("no notebook job {id}")).to_response(request_id),
        Some(JobStatus::Done(completed)) => {
            Response::json(200, &notebook_payload(id, request_id, &completed))
        }
        Some(JobStatus::Failed(f)) => Response::json(
            200,
            &json!({
                "id": id,
                "status": "failed",
                "http_status": f.status,
                "error": {
                    "code": f.code,
                    "message": f.message,
                    "retryable": f.retryable,
                    "request_id": request_id,
                },
            }),
        ),
        Some(status) => Response::json(200, &json!({ "id": id, "status": status.name() })),
    }
}

fn notebook_payload(id: u64, request_id: u64, completed: &crate::jobs::CompletedJob) -> Value {
    let run = completed.session.run();
    json!({
        "api_version": crate::error::API_VERSION,
        "id": id,
        "request_id": request_id,
        "status": "done",
        "dataset": completed.dataset.clone(),
        "entries": run.notebook.len() as u64,
        "n_tested": run.n_tested as u64,
        "n_significant": run.n_significant as u64,
        "total_interest": run.solution.total_interest,
        "markdown": to_markdown(&run.notebook),
    })
}

/// Reads the shared `k` / `mode` search parameters (defaults: 5,
/// cosine).
fn search_params(request: &Request) -> Result<(usize, ScoreKind), ApiError> {
    let k = match request.query_param("k") {
        None => 5,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return Err(ApiError::bad_request("`k` must be a positive integer")),
        },
    };
    let kind = match request.query_param("mode") {
        None => ScoreKind::Cosine,
        Some(raw) => match ScoreKind::parse(&raw) {
            Some(kind) => kind,
            None => return Err(ApiError::bad_request("`mode` must be `cosine` or `jaccard`")),
        },
    };
    Ok((k, kind))
}

fn hits_json(hits: &[cn_index::Hit]) -> Vec<Value> {
    hits.iter()
        .map(|h| {
            json!({
                "id": h.id.clone(),
                "dataset": h.dataset.clone(),
                "title": h.title.clone(),
                "entries": h.entries,
                "score": h.score,
            })
        })
        .collect()
}

fn handle_search(request: &Request, shared: &Shared, request_id: u64) -> Response {
    let Some(index) = &shared.index else {
        return ApiError::not_found("the similarity index is not enabled").to_response(request_id);
    };
    let Some(q) = request.query_param("q").filter(|q| !q.trim().is_empty()) else {
        return ApiError::bad_request("missing required query parameter `q`")
            .to_response(request_id);
    };
    let (k, kind) = match search_params(request) {
        Ok(p) => p,
        Err(e) => return e.to_response(request_id),
    };
    let terms = cn_index::parse_query(&q);
    let hits = index.search(&terms, k, kind, &shared.global);
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "request_id": request_id,
            "query": q,
            "k": k as u64,
            "mode": kind.name(),
            "hits": hits_json(&hits),
        }),
    )
}

fn handle_similar(raw_id: &str, request: &Request, shared: &Shared, request_id: u64) -> Response {
    let Some(index) = &shared.index else {
        return ApiError::not_found("the similarity index is not enabled").to_response(request_id);
    };
    let Some(id) = parse_id(raw_id) else {
        return ApiError::bad_request("notebook id must be an integer").to_response(request_id);
    };
    let completed = match shared.store.get(id) {
        Some(JobStatus::Done(c)) => c,
        Some(status) => {
            return ApiError::new(
                409,
                "conflict",
                format!("notebook {id} is {}; only done jobs have a signature", status.name()),
            )
            .to_response(request_id)
        }
        None => {
            return ApiError::not_found(format!("no notebook job {id}")).to_response(request_id)
        }
    };
    let (k, kind) = match search_params(request) {
        Ok(p) => p,
        Err(e) => return e.to_response(request_id),
    };
    let doc =
        cn_pipeline::index_document(&completed.table, completed.session.run(), &completed.dataset);
    let hits = index.similar_to(&doc, k, kind, &shared.global);
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "request_id": request_id,
            "id": id,
            "anchor": doc.id,
            "k": k as u64,
            "mode": kind.name(),
            "hits": hits_json(&hits),
        }),
    )
}

/// The `use_index == true` continuation: suggestions reranked by
/// evidence from similar prior notebooks in the corpus, the notebook
/// built from the evidence-chosen set. The default path never enters
/// here, so its output stays byte-identical with the index enabled.
fn continue_indexed(
    id: u64,
    completed: &CompletedJob,
    index: &ServeIndex,
    anchor: usize,
    k: usize,
    shared: &Shared,
    request_id: u64,
) -> Response {
    let run = completed.session.run();
    let own = cn_pipeline::index_document(&completed.table, run, &completed.dataset);
    let weights = DistanceWeights::default();
    let reranked = index.with_index(&shared.global, |ix| {
        cn_pipeline::rerank_suggestions(&completed.table, run, ix, &own.id, anchor, k, &weights)
    });
    let reranked = match reranked {
        Ok(r) => r,
        Err(e) => return ApiError::from_pipeline(&e).to_response(request_id),
    };
    let notebook =
        cn_pipeline::continuation_from_reranked(&completed.table, run, anchor, &reranked);
    let suggestions: Vec<Value> = reranked
        .iter()
        .map(|r| {
            json!({
                "query": r.suggestion.query as u64,
                "distance": r.suggestion.distance,
                "interest": r.suggestion.interest,
                "score": r.suggestion.score,
                "evidence": r.evidence,
                "boosted": r.boosted,
            })
        })
        .collect();
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "id": id,
            "request_id": request_id,
            "anchor": anchor as u64,
            "use_index": true,
            "suggestions": suggestions,
            "markdown": to_markdown(&notebook),
        }),
    )
}

fn handle_continue(raw_id: &str, request: &Request, shared: &Shared, request_id: u64) -> Response {
    let Some(id) = parse_id(raw_id) else {
        return ApiError::bad_request("session id must be an integer").to_response(request_id);
    };
    let completed = match shared.store.get(id) {
        Some(JobStatus::Done(c)) => c,
        Some(status) => {
            return ApiError::new(
                409,
                "conflict",
                format!("session {id} is {}; only done jobs can continue", status.name()),
            )
            .to_response(request_id)
        }
        None => return ApiError::not_found(format!("no session {id}")).to_response(request_id),
    };
    let body = request.json().unwrap_or(Value::Null);
    let anchor = u64_field(&body, "anchor").unwrap_or(0) as usize;
    let k = u64_field(&body, "k").unwrap_or(3) as usize;
    if body.get("use_index").and_then(Value::as_bool).unwrap_or(false) {
        let Some(index) = &shared.index else {
            return ApiError::bad_request(
                "`use_index` requires the similarity index to be enabled",
            )
            .to_response(request_id);
        };
        return continue_indexed(id, &completed, index, anchor, k, shared, request_id);
    }
    let suggestions = match completed.session.suggest(anchor, k) {
        Ok(s) => s,
        Err(e) => return ApiError::from_pipeline(&e).to_response(request_id),
    };
    let notebook = match completed.session.continue_notebook(&completed.table, anchor, k) {
        Ok(nb) => nb,
        Err(e) => return ApiError::from_pipeline(&e).to_response(request_id),
    };
    let suggestions: Vec<Value> = suggestions
        .iter()
        .map(|s| {
            json!({
                "query": s.query as u64,
                "distance": s.distance,
                "interest": s.interest,
                "score": s.score,
            })
        })
        .collect();
    Response::json(
        200,
        &json!({
            "api_version": crate::error::API_VERSION,
            "id": id,
            "request_id": request_id,
            "anchor": anchor as u64,
            "suggestions": suggestions,
            "markdown": to_markdown(&notebook),
        }),
    )
}
