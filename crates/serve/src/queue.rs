//! A bounded MPMC job queue with admission control.
//!
//! `submit` never blocks: a full queue rejects the job immediately (the
//! server turns that into HTTP 429), which keeps tail latency bounded
//! instead of letting a backlog grow without limit. `pop` blocks until
//! work arrives or the queue is closed; closing still drains what was
//! already admitted, which is exactly the graceful-shutdown contract.

use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue holds `depth` jobs already — admission control fired.
    Full,
    /// The queue was closed (server draining); no new work accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue full"),
            SubmitError::Closed => write!(f, "job queue closed"),
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    depth: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `depth` outstanding jobs.
    pub fn new(depth: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues `item`, or rejects it without blocking.
    ///
    /// # Errors
    /// [`SubmitError::Full`] at depth, [`SubmitError::Closed`] after
    /// [`JobQueue::close`].
    pub fn submit(&self, item: T) -> Result<(), SubmitError> {
        let mut state = lock_unpoisoned(&self.state);
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.items.len() >= self.depth {
            return Err(SubmitError::Full);
        }
        state.items.push_back(item);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = wait_unpoisoned(&self.cond, state);
        }
    }

    /// Stops admission and wakes every blocked consumer. Already-queued
    /// jobs still drain through [`JobQueue::pop`].
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.cond.notify_all();
    }

    /// Jobs currently waiting (not the ones already being worked).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).items.len()
    }

    /// True when no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn admission_control_rejects_at_depth() {
        let q = JobQueue::new(2);
        assert_eq!(q.submit(1), Ok(()));
        assert_eq!(q.submit(2), Ok(()));
        assert_eq!(q.submit(3), Err(SubmitError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.submit(3), Ok(()), "popping frees a slot");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_queued_work_then_stops() {
        let q = JobQueue::new(4);
        q.submit("a").unwrap();
        q.submit("b").unwrap();
        q.close();
        assert_eq!(q.submit("c"), Err(SubmitError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_submit_and_close() {
        let q = Arc::new(JobQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || q.pop())
            })
            .collect();
        q.submit(7u32).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
