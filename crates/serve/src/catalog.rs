//! The dataset catalog: named datasets resolved to loaded [`Table`]s,
//! with an LRU cache so a warm dataset is never re-parsed from CSV.
//!
//! Registration happens at server construction (CSV paths or already
//! built in-memory tables); requests then refer to datasets by name.
//! Every lookup lands on exactly one of two counters — `catalog_hits`
//! (served from memory) or `catalog_misses` (had to parse the CSV) —
//! so `/metrics` can prove that a warmed-up server does no repeated
//! parsing work.

use cn_obs::sync::lock_unpoisoned;
use cn_obs::{Metric, Registry};
use cn_store::{Store, StoreError};
use cn_tabular::csv::{read_path, CsvOptions};
use cn_tabular::Table;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A CSV-backed dataset registration.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Name clients use in requests.
    pub name: String,
    /// CSV file to load on first use.
    pub path: PathBuf,
    /// Columns treated as measures (`None` = inferred).
    pub measures: Option<Vec<String>>,
    /// Columns dropped entirely.
    pub ignore: Vec<String>,
}

/// Why a dataset lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// No dataset registered under this name.
    Unknown(String),
    /// The CSV exists in the catalog but failed to load.
    Load {
        /// Dataset name.
        name: String,
        /// The loader's error message.
        message: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Unknown(name) => write!(f, "unknown dataset `{name}`"),
            CatalogError::Load { name, message } => {
                write!(f, "failed to load dataset `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Store-side lifecycle of a dataset, as reported by `GET /v1/datasets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreStatus {
    /// No usable artifact on disk (yet).
    Cold,
    /// The precompute worker is building (or queued to build) one.
    Building,
    /// A validated artifact is on disk and serves warm starts.
    Warm,
}

impl StoreStatus {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            StoreStatus::Cold => "cold",
            StoreStatus::Building => "building",
            StoreStatus::Warm => "warm",
        }
    }
}

/// The artifact store attached to a catalog, plus the per-dataset status
/// book-keeping and the channel into the background precompute worker.
struct StoreState {
    store: Store,
    /// `name → (status, artifact fingerprint when warm)`.
    status: Mutex<HashMap<String, (StoreStatus, Option<String>)>>,
    /// Build requests flow here; `None` until the worker is spawned (and
    /// again after shutdown, which is what lets the worker's receiver
    /// disconnect and the thread exit).
    build_tx: Mutex<Option<mpsc::Sender<String>>>,
    /// Store-wide health: I/O failures that survived their retries, in a
    /// row. The disk is one shared resource, so health is tracked per
    /// store, not per dataset — a flapping mount degrades everything at
    /// once, and one successful read heals everything at once.
    consecutive_failures: AtomicU32,
    /// Set when `consecutive_failures` crossed the threshold. A degraded
    /// store is read with a fail-fast single-attempt policy, so a
    /// recovered disk is noticed by the first request that touches it.
    degraded: AtomicBool,
    /// Failures-in-a-row before flipping `degraded` (from
    /// [`crate::ServeConfig::degrade_after`]).
    degrade_after: AtomicU32,
}

struct Lru {
    map: HashMap<String, Arc<Table>>,
    /// Names from least- to most-recently used.
    order: Vec<String>,
}

impl Lru {
    fn touch(&mut self, name: &str) {
        self.order.retain(|n| n != name);
        self.order.push(name.to_string());
    }
}

/// The catalog itself. Shared across workers behind an `Arc`; the LRU
/// state sits under one mutex, which also serializes cold loads so a
/// thundering herd on an unloaded dataset parses the CSV once.
pub struct Catalog {
    specs: Vec<DatasetSpec>,
    /// In-memory datasets (demo tables); never evicted, always a hit.
    pinned: HashMap<String, Arc<Table>>,
    cache: Mutex<Lru>,
    capacity: usize,
    obs: Arc<Registry>,
    /// Warm-start artifact store; `None` runs every request cold.
    store: Option<StoreState>,
    /// Shared group-by cube cache for the shared-scan kernel: one cache
    /// for the whole server, keyed by table content fingerprint, so every
    /// job over the same dataset reuses the same dense cubes.
    groupby_cache: Arc<cn_pipeline::GroupByCache>,
}

impl Catalog {
    /// An empty catalog caching at most `capacity` CSV-backed tables.
    pub fn new(capacity: usize, obs: Arc<Registry>) -> Catalog {
        Catalog {
            specs: Vec::new(),
            pinned: HashMap::new(),
            cache: Mutex::new(Lru { map: HashMap::new(), order: Vec::new() }),
            capacity: capacity.max(1),
            obs,
            store: None,
            groupby_cache: Arc::new(cn_pipeline::GroupByCache::default()),
        }
    }

    /// The registry this catalog counts hits and misses into.
    pub fn registry(&self) -> Arc<Registry> {
        self.obs.clone()
    }

    /// The server-wide group-by cube cache handed to every generation
    /// run (and to each [`cn_pipeline::ExplorationSession`], so session
    /// continuations share it too).
    pub fn groupby_cache(&self) -> Arc<cn_pipeline::GroupByCache> {
        self.groupby_cache.clone()
    }

    /// Attaches a warm-start artifact store rooted at `dir` (created if
    /// absent). All datasets start [`StoreStatus::Cold`]; the precompute
    /// worker promotes them.
    ///
    /// # Errors
    /// The underlying [`StoreError`] when the directory cannot be created.
    pub fn set_store(&mut self, dir: &Path) -> Result<(), StoreError> {
        let store = Store::open(dir)?;
        self.store = Some(StoreState {
            store,
            status: Mutex::new(HashMap::new()),
            build_tx: Mutex::new(None),
            consecutive_failures: AtomicU32::new(0),
            degraded: AtomicBool::new(false),
            degrade_after: AtomicU32::new(2),
        });
        Ok(())
    }

    /// Sets how many consecutive post-retry I/O failures flip the store
    /// into the degraded state (server start, from the config).
    pub fn set_degrade_after(&self, n: u32) {
        if let Some(state) = &self.store {
            state.degrade_after.store(n.max(1), Ordering::Relaxed);
        }
    }

    /// True while the store is degraded: reads fail fast onto the cold
    /// path instead of burning retry backoff on a disk that keeps
    /// failing. `/healthz` surfaces this as `"degraded"`.
    pub fn store_degraded(&self) -> bool {
        self.store.as_ref().map(|s| s.degraded.load(Ordering::Relaxed)).unwrap_or(false)
    }

    /// Records a store I/O failure that survived its retries. At the
    /// configured threshold the store flips to degraded (counted once in
    /// `degraded_transitions`, not per failing request).
    pub fn note_store_failure(&self) {
        let Some(state) = &self.store else { return };
        let failures = state.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= state.degrade_after.load(Ordering::Relaxed)
            && !state.degraded.swap(true, Ordering::Relaxed)
        {
            self.obs.inc(Metric::DegradedTransitions);
        }
    }

    /// Records a successful store read or write. Clears the failure
    /// streak; if the store was degraded, this is the recovery edge
    /// (counted in `degraded_transitions` again, so the counter's parity
    /// tells whether the store is currently degraded).
    pub fn note_store_success(&self) {
        let Some(state) = &self.store else { return };
        state.consecutive_failures.store(0, Ordering::Relaxed);
        if state.degraded.swap(false, Ordering::Relaxed) {
            self.obs.inc(Metric::DegradedTransitions);
        }
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref().map(|s| &s.store)
    }

    /// Store status of `name`: `None` without a store, otherwise the
    /// current `(status, fingerprint-when-warm)` pair.
    pub fn store_status(&self, name: &str) -> Option<(StoreStatus, Option<String>)> {
        let state = self.store.as_ref()?;
        let status = lock_unpoisoned(&state.status);
        Some(status.get(name).cloned().unwrap_or((StoreStatus::Cold, None)))
    }

    /// Records a store status transition for `name` (worker-side).
    pub fn mark_store_status(&self, name: &str, status: StoreStatus, fingerprint: Option<String>) {
        if let Some(state) = &self.store {
            lock_unpoisoned(&state.status).insert(name.to_string(), (status, fingerprint));
        }
    }

    /// Connects the precompute worker's build-request channel.
    pub fn set_build_trigger(&self, tx: mpsc::Sender<String>) {
        if let Some(state) = &self.store {
            *lock_unpoisoned(&state.build_tx) = Some(tx);
        }
    }

    /// Disconnects the build channel; the worker's receiver then drains
    /// and the thread exits.
    pub fn close_build_trigger(&self) {
        if let Some(state) = &self.store {
            *lock_unpoisoned(&state.build_tx) = None;
        }
    }

    /// Asks the precompute worker to (re)build `name`'s artifact.
    /// Duplicate requests are deduplicated by flipping the status to
    /// [`StoreStatus::Building`] up front; without a connected worker the
    /// dataset stays cold so a later request can retry.
    pub fn request_build(&self, name: &str) {
        let Some(state) = &self.store else { return };
        {
            let mut status = lock_unpoisoned(&state.status);
            let entry = status.entry(name.to_string()).or_insert((StoreStatus::Cold, None));
            if entry.0 == StoreStatus::Building {
                return;
            }
            *entry = (StoreStatus::Building, None);
        }
        let sent = lock_unpoisoned(&state.build_tx)
            .as_ref()
            .map(|tx| tx.send(name.to_string()).is_ok())
            .unwrap_or(false);
        if !sent {
            let mut status = lock_unpoisoned(&state.status);
            if let Some(entry) = status.get_mut(name) {
                *entry = (StoreStatus::Cold, None);
            }
        }
    }

    /// True when a dataset is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.pinned.contains_key(name) || self.specs.iter().any(|s| s.name == name)
    }

    /// Registers a CSV-backed dataset (loaded lazily, LRU-cached).
    pub fn register(&mut self, spec: DatasetSpec) {
        self.specs.retain(|s| s.name != spec.name);
        self.specs.push(spec);
    }

    /// Registers an in-memory dataset under `name` (never re-loaded).
    pub fn register_table(&mut self, name: &str, table: Table) {
        self.pinned.insert(name.to_string(), Arc::new(table));
    }

    /// `(name, loaded)` for every registered dataset, sorted by name.
    pub fn list(&self) -> Vec<(String, bool)> {
        let cache = lock_unpoisoned(&self.cache);
        let mut out: Vec<(String, bool)> = self
            .specs
            .iter()
            .map(|s| (s.name.clone(), cache.map.contains_key(&s.name)))
            .chain(self.pinned.keys().map(|n| (n.clone(), true)))
            .collect();
        out.sort();
        out
    }

    /// Resolves `name` to a loaded table, counting a hit or a miss.
    ///
    /// # Errors
    /// [`CatalogError::Unknown`] for unregistered names,
    /// [`CatalogError::Load`] when the CSV fails to parse.
    pub fn get(&self, name: &str) -> Result<Arc<Table>, CatalogError> {
        if let Some(t) = self.pinned.get(name) {
            self.obs.inc(Metric::CatalogHits);
            return Ok(t.clone());
        }
        let spec = self
            .specs
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| CatalogError::Unknown(name.to_string()))?;
        let mut cache = lock_unpoisoned(&self.cache);
        if let Some(t) = cache.map.get(name).cloned() {
            self.obs.inc(Metric::CatalogHits);
            cache.touch(name);
            return Ok(t);
        }
        self.obs.inc(Metric::CatalogMisses);
        let options = CsvOptions {
            measures: spec.measures.clone(),
            ignore: spec.ignore.clone(),
            ..Default::default()
        };
        let table = read_path(&spec.path, &options)
            .map(Arc::new)
            .map_err(|e| CatalogError::Load { name: name.to_string(), message: e.to_string() })?;
        if cache.map.len() >= self.capacity {
            if let Some(evicted) = cache.order.first().cloned() {
                cache.order.remove(0);
                cache.map.remove(&evicted);
            }
        }
        cache.map.insert(name.to_string(), table.clone());
        cache.touch(name);
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn csv_file(dir: &std::path::Path, name: &str, rows: usize) -> PathBuf {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "region,channel,sales").unwrap();
        for i in 0..rows {
            writeln!(f, "r{},c{},{}.5", i % 3, i % 2, i).unwrap();
        }
        path
    }

    fn spec(name: &str, path: PathBuf) -> DatasetSpec {
        DatasetSpec { name: name.to_string(), path, measures: None, ignore: Vec::new() }
    }

    #[test]
    fn caches_loads_and_counts_hits_and_misses() {
        let dir = std::env::temp_dir().join("cn_serve_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Arc::new(Registry::new());
        let mut catalog = Catalog::new(4, obs.clone());
        catalog.register(spec("a", csv_file(&dir, "a.csv", 12)));
        assert_eq!(catalog.get("a").unwrap().n_rows(), 12);
        assert_eq!(catalog.get("a").unwrap().n_rows(), 12);
        assert_eq!(obs.get(Metric::CatalogMisses), 1, "one cold load");
        assert_eq!(obs.get(Metric::CatalogHits), 1, "one warm hit");
        assert!(matches!(catalog.get("nope"), Err(CatalogError::Unknown(_))));
        let bad = dir.join("missing.csv");
        catalog.register(spec("bad", bad));
        assert!(matches!(catalog.get("bad"), Err(CatalogError::Load { .. })));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let dir = std::env::temp_dir().join("cn_serve_catalog_lru");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Arc::new(Registry::new());
        let mut catalog = Catalog::new(2, obs.clone());
        for name in ["a", "b", "c"] {
            catalog.register(spec(name, csv_file(&dir, &format!("{name}.csv"), 6)));
        }
        catalog.get("a").unwrap();
        catalog.get("b").unwrap();
        catalog.get("a").unwrap(); // refresh `a`; `b` is now the LRU entry
        catalog.get("c").unwrap(); // evicts `b`
        assert_eq!(obs.get(Metric::CatalogMisses), 3);
        catalog.get("a").unwrap(); // still cached
        assert_eq!(obs.get(Metric::CatalogMisses), 3);
        catalog.get("b").unwrap(); // evicted → reload
        assert_eq!(obs.get(Metric::CatalogMisses), 4);
    }

    #[test]
    fn store_status_tracks_build_requests_and_transitions() {
        let dir = std::env::temp_dir().join("cn_serve_catalog_store");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Arc::new(Registry::new());
        let mut catalog = Catalog::new(2, obs);
        assert_eq!(catalog.store_status("x"), None, "no store attached yet");

        catalog.set_store(&dir).unwrap();
        assert!(catalog.store().is_some());
        assert_eq!(catalog.store_status("x"), Some((StoreStatus::Cold, None)));

        // Without a connected worker a build request must not wedge the
        // dataset in `building` forever.
        catalog.request_build("x");
        assert_eq!(catalog.store_status("x"), Some((StoreStatus::Cold, None)));

        let (tx, rx) = mpsc::channel();
        catalog.set_build_trigger(tx);
        catalog.request_build("x");
        assert_eq!(rx.try_recv().unwrap(), "x");
        assert_eq!(catalog.store_status("x"), Some((StoreStatus::Building, None)));
        // Duplicate requests while building are deduplicated.
        catalog.request_build("x");
        assert!(rx.try_recv().is_err());

        catalog.mark_store_status("x", StoreStatus::Warm, Some("abc".to_string()));
        assert_eq!(catalog.store_status("x"), Some((StoreStatus::Warm, Some("abc".to_string()))));
        catalog.close_build_trigger();
        assert!(rx.recv().is_err(), "channel disconnects at shutdown");
    }

    #[test]
    fn degradation_flips_at_the_threshold_and_heals_on_success() {
        let dir = std::env::temp_dir().join("cn_serve_catalog_degrade");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Arc::new(Registry::new());
        let mut catalog = Catalog::new(2, obs.clone());
        // Without a store the health calls are inert.
        catalog.note_store_failure();
        assert!(!catalog.store_degraded());

        catalog.set_store(&dir).unwrap();
        catalog.set_degrade_after(2);
        catalog.note_store_failure();
        assert!(!catalog.store_degraded(), "one failure is below the threshold");
        catalog.note_store_failure();
        assert!(catalog.store_degraded());
        assert_eq!(obs.get(Metric::DegradedTransitions), 1);
        // More failures while degraded do not re-count the transition.
        catalog.note_store_failure();
        assert_eq!(obs.get(Metric::DegradedTransitions), 1);

        catalog.note_store_success();
        assert!(!catalog.store_degraded(), "one success heals");
        assert_eq!(obs.get(Metric::DegradedTransitions), 2, "recovery is the second edge");
        // The streak reset: a single new failure does not re-degrade.
        catalog.note_store_failure();
        assert!(!catalog.store_degraded());
    }

    #[test]
    fn pinned_tables_always_hit_and_appear_loaded() {
        let schema = cn_tabular::Schema::new(vec!["g"], vec!["m"]).unwrap();
        let mut b = cn_tabular::TableBuilder::new("demo", schema);
        b.push_row(&["x"], &[1.0]).unwrap();
        let obs = Arc::new(Registry::new());
        let mut catalog = Catalog::new(2, obs.clone());
        catalog.register_table("demo", b.finish());
        assert_eq!(catalog.get("demo").unwrap().n_rows(), 1);
        assert_eq!(obs.get(Metric::CatalogMisses), 0);
        assert_eq!(obs.get(Metric::CatalogHits), 1);
        assert_eq!(catalog.list(), vec![("demo".to_string(), true)]);
    }
}
