//! # cn-serve
//!
//! A concurrent notebook-generation service over the `cn-pipeline`
//! generators — the interactive deployment story the paper sketches
//! ("starting points of the exploration of a potentially unknown
//! dataset", Section 6.5), turned into an HTTP API:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/notebooks` | generate a notebook on a named dataset |
//! | `GET /v1/notebooks/{id}` | job status / finished notebook |
//! | `POST /v1/sessions/{id}/continue` | continuations from the cached session (`use_index` opts into retrieval-biased reranking) |
//! | `GET /v1/datasets` | the dataset catalog |
//! | `GET /v1/search` | top-k similarity search over indexed notebooks (`q`, `k`, `mode`) |
//! | `GET /v1/notebooks/{id}/similar` | prior notebooks most similar to a finished job |
//! | `GET /v1/sched` | scheduler snapshot: per-tenant queues, token balances, totals (`schemas/sched.schema.json`) |
//! | `GET /metrics` | `cn-obs` report (validates against `schemas/metrics.schema.json`) |
//! | `GET /healthz` | liveness + queue depth |
//!
//! Three properties carry the design:
//!
//! - **Dataset catalog** ([`catalog`]): named datasets resolve to loaded
//!   tables through an LRU cache; a warm dataset is never re-parsed,
//!   and the `catalog_hits` / `catalog_misses` counters prove it.
//! - **Fair-share scheduling** (`cn-sched`): generation jobs flow
//!   through a multi-tenant deficit-round-robin scheduler with two
//!   priority classes, per-tenant token-bucket admission (429
//!   `rate_limited` with a refill-derived `Retry-After`), bounded
//!   per-tenant backlogs (429 `queue_full`), deadline shedding, and
//!   single-flight coalescing of identical concurrent requests.
//!   Without a policy ([`ServeConfig::sched`] `None`) it collapses to
//!   the legacy single bounded FIFO and responses are byte-identical
//!   to the pre-scheduler server.
//! - **Cooperative cancellation** ([`jobs`]): each request carries a
//!   [`cn_obs::CancelToken`] (optionally deadline-armed) that
//!   `cn_pipeline::run_cancellable` polls between phases and inside the
//!   permutation-test loop, so a cancelled request frees its worker
//!   within one unit of work and surfaces as HTTP 408.
//!
//! With a store directory configured ([`ServeConfig::store_dir`]), a
//! fourth property joins: **warm starts**. A background precompute
//! worker builds `cn-store` artifacts (Phases 0–2, the expensive
//! statistical prefix) per dataset; fingerprint-matching requests replay
//! them through `cn_pipeline::run_from_store_cancellable` —
//! bit-identical results, `store_hits` in `/metrics`, and cold fallback
//! (never a panic) on stale or corrupt artifacts.
//!
//! Everything is `std`-only — homegrown HTTP parsing in [`http`], the
//! same dependency-light discipline as the `cn-obs` schema validator.
//!
//! **Failure handling** rides on `cn-fault`: store reads/writes retry
//! with seeded exponential backoff, corrupt artifacts are quarantined
//! (renamed aside, never clobbered), repeated I/O failure degrades the
//! store (`/healthz` reports `degraded`, requests fall back to the cold
//! pipeline), and every 4xx/5xx answer is a versioned [`ApiError`]
//! envelope (`schemas/api_error.schema.json`) carrying a machine code,
//! a retryability flag, and the request id that also tags the request's
//! span in `/metrics`.
//!
//! With an index path configured ([`ServeConfig::index_path`]), the
//! server keeps a **persistent similarity index** ([`indexer`], a
//! `cn-index` CNIDX file): a background thread registers every
//! completed job's notebook signature, `GET /v1/search` and `GET
//! /v1/notebooks/{id}/similar` answer top-k queries over the corpus,
//! and `use_index` on a continuation request reranks suggestions by
//! evidence from similar prior notebooks. Indexing is strictly
//! additive — with the knob unset, responses are byte-identical to an
//! index-less server.
//!
//! ```no_run
//! use cn_serve::{start, Catalog, DatasetSpec, ServeConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(cn_serve::Registry::new());
//! let mut catalog = Catalog::new(8, registry);
//! catalog.register(DatasetSpec {
//!     name: "covid".into(),
//!     path: "data/covid_sample.csv".into(),
//!     measures: None,
//!     ignore: vec![],
//! });
//! let handle = start(ServeConfig::default(), catalog).expect("bind");
//! println!("listening on {}", handle.addr());
//! handle.shutdown();
//! handle.join();
//! ```

pub mod catalog;
pub mod error;
pub mod http;
pub mod indexer;
pub mod jobs;
mod precompute;
pub mod queue;
pub mod server;
pub mod sync;

pub use catalog::{Catalog, CatalogError, DatasetSpec, StoreStatus};
pub use cn_obs::Registry;
pub use cn_sched::{Class, ConfigError as SchedConfigError, SchedConfig, TenantConfig};
pub use error::{ApiError, API_VERSION};
pub use indexer::ServeIndex;
pub use jobs::{JobSpec, JobStatus, JobStore};
pub use queue::{JobQueue, SubmitError};
pub use server::{start, Handle, ServeConfig};
pub use sync::{lock_unpoisoned, wait_unpoisoned};
