//! A deliberately small HTTP/1.1 subset over `std::net`.
//!
//! The service speaks exactly what its JSON API needs: request line +
//! headers + optional `Content-Length` body in, `Connection: close`
//! JSON responses out. No keep-alive, no chunked encoding, no TLS —
//! the same dependency-light discipline as the rest of the workspace
//! (cf. the `cn-obs` schema validator).

use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest request body the server will read (1 MiB) — the API only
/// carries small JSON documents, so anything bigger is hostile.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw query string (after `?`, without it; empty when absent).
    pub query: String,
    /// Headers as `(lowercased-name, trimmed-value)` pairs, in arrival
    /// order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when the request has none).
    pub body: Vec<u8>,
}

/// Minimal percent-decoding for query values: `%XX` byte escapes and
/// `+` as space. Invalid escapes pass through verbatim.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|hex| std::str::from_utf8(hex).ok())
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

impl Request {
    /// The body parsed as JSON; `None` when empty or malformed.
    pub fn json(&self) -> Option<Value> {
        let text = std::str::from_utf8(&self.body).ok()?;
        serde_json::from_str(text).ok()
    }

    /// Path split into non-empty segments (`/v1/notebooks/3` →
    /// `["v1", "notebooks", "3"]`).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// The value of header `name` (case-insensitive), `None` when
    /// absent; the first occurrence wins.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The percent-decoded value of query parameter `name`, `None`
    /// when absent. A bare `?name` (no `=`) yields the empty string;
    /// the first occurrence wins.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| p.split_once('=').unwrap_or((p, "")))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| percent_decode(v))
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The stream closed or timed out before a full request arrived.
    Io(String),
    /// The request line or a header was malformed.
    Malformed(&'static str),
    /// The declared body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error reading request: {e}"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit")
            }
        }
    }
}

/// Classifies a read error: raw non-UTF-8 bytes where text belongs are
/// the client's malformed request (worth a 400 envelope), not a dead
/// socket.
fn io_parse(e: std::io::Error) -> ParseError {
    if e.kind() == std::io::ErrorKind::InvalidData {
        ParseError::Malformed("request is not valid UTF-8")
    } else {
        ParseError::Io(e.to_string())
    }
}

/// Reads one request from `stream`, honoring `Content-Length`.
///
/// # Errors
/// [`ParseError`] on a malformed request line, unreadable headers, or
/// an oversized body.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    // A slow or stalled client must not wedge a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(io_parse)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed("empty request line"))?.to_uppercase();
    let target = parts.next().ok_or(ParseError::Malformed("missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(io_parse)?;
        if n == 0 {
            return Err(ParseError::Malformed("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        // Obsolete line folding (RFC 7230 §3.2.4): a continuation line
        // would silently glue onto whatever header a proxy thought came
        // before it — a smuggling vector, so reject outright.
        if header.starts_with(' ') || header.starts_with('\t') {
            return Err(ParseError::Malformed("obsolete header line folding"));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed("header line without a colon"));
        };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        if name.is_empty() {
            return Err(ParseError::Malformed("empty header name"));
        }
        if name == "content-length" {
            let parsed =
                value.parse().map_err(|_| ParseError::Malformed("unparseable content-length"))?;
            // Two agreeing lengths are tolerable duplication; two
            // different ones mean the client and some intermediary
            // disagree about where the body ends.
            if content_length.is_some_and(|seen| seen != parsed) {
                return Err(ParseError::Malformed("conflicting content-length headers"));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value.to_string()));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| ParseError::Io(e.to_string()))?;
    Ok(Request { method, path, query, headers, body })
}

/// An outgoing JSON response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Pre-serialized JSON body.
    pub body: String,
    /// Extra headers beyond the standard three (e.g. `Retry-After` on
    /// load-shedding responses).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A response with `status` and a JSON `body`.
    pub fn json(status: u16, body: &Value) -> Response {
        Response {
            status,
            body: serde_json::to_string(body).unwrap_or_default(),
            headers: Vec::new(),
        }
    }

    /// Appends an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Writes the response (status line, headers, body) and flushes.
    ///
    /// # Errors
    /// The first failed write — the caller counts these
    /// (`responses_write_failed`) instead of silently losing them: a
    /// client that disconnected mid-response is operationally different
    /// from one that got its answer.
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roundtrip(raw: &str) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            "POST /v1/notebooks?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 16\r\n\r\n{\"dataset\":\"d\"}\n",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/notebooks");
        assert_eq!(req.segments(), vec!["v1", "notebooks"]);
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("HOST"), Some("h"), "header lookup is case-insensitive");
        assert_eq!(req.header("x-cn-tenant"), None);
        assert_eq!(req.query_param("x").as_deref(), Some("1"));
        let json = req.json().unwrap();
        assert_eq!(json["dataset"], "d");
    }

    #[test]
    fn query_parameters_decode_and_first_wins() {
        let req =
            roundtrip("GET /v1/search?q=group%3Amonth+cases&k=5&q=second&flag HTTP/1.1\r\n\r\n")
                .unwrap();
        assert_eq!(req.path, "/v1/search");
        assert_eq!(req.query_param("q").as_deref(), Some("group:month cases"));
        assert_eq!(req.query_param("k").as_deref(), Some("5"));
        assert_eq!(req.query_param("flag").as_deref(), Some(""));
        assert_eq!(req.query_param("absent"), None);
        // Invalid escapes pass through instead of erroring.
        assert_eq!(super::percent_decode("a%zz%4"), "a%zz%4");
        assert_eq!(super::percent_decode("%41"), "A");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.json().is_none());
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(roundtrip("\r\n\r\n"), Err(ParseError::Malformed(_))));
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(roundtrip(&huge), Err(ParseError::BodyTooLarge(_))));
        // A method with no target, and an unparseable length.
        assert!(matches!(roundtrip("GARBAGE\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            roundtrip("POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_but_agreeing_ones_pass() {
        let conflict = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\nhello!!";
        assert!(matches!(roundtrip(conflict), Err(ParseError::Malformed(_))));
        let agree = "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(roundtrip(agree).unwrap().body, b"hello");
    }

    #[test]
    fn colonless_empty_name_and_folded_headers_are_rejected() {
        assert!(matches!(
            roundtrip("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed("header line without a colon"))
        ));
        assert!(matches!(
            roundtrip("GET /x HTTP/1.1\r\n: nameless\r\n\r\n"),
            Err(ParseError::Malformed("empty header name"))
        ));
        assert!(matches!(
            roundtrip("GET /x HTTP/1.1\r\nA: b\r\n\tfolded continuation\r\n\r\n"),
            Err(ParseError::Malformed("obsolete header line folding"))
        ));
    }

    #[test]
    fn raw_garbage_bytes_are_malformed_not_a_dead_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xff, 0xfe, 0x80, 0x00, 0x99]).unwrap();
            drop(s);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream).unwrap_err();
        client.join().unwrap();
        // Invalid UTF-8 must earn a 400 envelope, not a silent drop.
        assert!(matches!(err, ParseError::Malformed(_)), "got {err:?}");
    }

    #[test]
    fn body_without_content_length_parses_as_empty() {
        // The body is simply not read; the request itself is well-formed
        // and the JSON layer reports the missing document as a 400.
        let req = roundtrip("POST /v1/notebooks HTTP/1.1\r\nHost: h\r\n\r\n{\"x\":1}").unwrap();
        assert!(req.body.is_empty());
        assert!(req.json().is_none());
    }

    #[test]
    fn split_body_writes_reassemble() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"a\"").unwrap();
            s.flush().unwrap();
            thread::sleep(std::time::Duration::from_millis(50));
            s.write_all(b":true}").unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap();
        client.join().unwrap();
        assert_eq!(req.json().unwrap()["a"], true);
    }

    #[test]
    fn extra_headers_are_written() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(429, &serde_json::json!({"ok": false}))
                .with_header("Retry-After", "1")
                .write(&mut stream)
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"ok\":false}"));
    }

    #[test]
    fn writing_to_a_disconnected_client_errors_without_panicking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut stream, _) = listener.accept().unwrap();
        drop(client);
        thread::sleep(std::time::Duration::from_millis(50));
        // A large body guarantees the broken pipe surfaces even past
        // socket buffering; two writes make the second one definite.
        let big = Response { status: 200, body: "x".repeat(1 << 20), headers: Vec::new() };
        let first = big.write(&mut stream);
        let second = big.write(&mut stream);
        assert!(
            first.is_err() || second.is_err(),
            "a vanished client must surface as a write error"
        );
    }
}
