//! Generation jobs: the unit of work flowing through the bounded queue,
//! the shared job store, and the worker loop that runs the pipeline
//! under a per-request [`CancelToken`] and a per-request metrics
//! registry.

use crate::catalog::{Catalog, CatalogError};
use crate::error::{catalog_code, pipeline_code};
use cn_fault::{retry, RetryPolicy, Retryable};
use cn_interest::DistanceWeights;
use cn_obs::{CancelToken, Metric, Registry};
use cn_pipeline::{
    prefix_fingerprint, run_cancellable_cached, run_from_store_cached, ExplorationSession,
    GeneratorConfig, PipelineError, RunResult,
};
use cn_store::StoreError;
use cn_tabular::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::sync::lock_unpoisoned;

/// What a client asked for (already validated by the HTTP layer).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job id (also the session id for continuations).
    pub id: u64,
    /// The HTTP request id that submitted the job; tags the job's root
    /// span so error envelopes and span trees correlate.
    pub request_id: u64,
    /// Catalog name of the dataset.
    pub dataset: String,
    /// Wanted notebook length (`ε_t` with unit costs).
    pub notebook_len: usize,
    /// Permutations per statistical test.
    pub n_permutations: usize,
    /// Root seed.
    pub seed: u64,
    /// Distance budget override (`None` derives a default).
    pub epsilon_d: Option<f64>,
}

/// A queued unit of work.
pub struct Job {
    /// The request.
    pub spec: JobSpec,
    /// Cancellation signal (explicit or deadline-driven).
    pub cancel: CancelToken,
    /// Fired once the job reaches a terminal state in the store.
    pub done: mpsc::Sender<()>,
}

/// A finished generation run, kept for `GET /v1/notebooks/{id}` and
/// `POST /v1/sessions/{id}/continue`.
pub struct CompletedJob {
    /// Dataset the notebook was generated from.
    pub dataset: String,
    /// The loaded table (shared with the catalog cache).
    pub table: Arc<Table>,
    /// Cached exploration artifact serving continuations.
    pub session: ExplorationSession,
}

/// Terminal failure of a job, pre-classified for the error envelope.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// HTTP status the failure translates to.
    pub status: u16,
    /// Stable machine-readable code (`schemas/api_error.schema.json`).
    pub code: &'static str,
    /// Human-readable error.
    pub message: String,
    /// Whether retrying the identical request can plausibly succeed.
    pub retryable: bool,
}

impl JobFailure {
    fn from_pipeline(e: &PipelineError) -> JobFailure {
        let (status, code) = pipeline_code(e);
        JobFailure { status, code, message: e.to_string(), retryable: e.retryable() }
    }

    fn from_catalog(e: &CatalogError) -> JobFailure {
        let (status, code) = catalog_code(e);
        JobFailure { status, code, message: e.to_string(), retryable: false }
    }
}

/// Lifecycle of a job in the store.
#[derive(Clone)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is running the pipeline.
    Running,
    /// Finished successfully.
    Done(Arc<CompletedJob>),
    /// Finished with an error (including cancellation).
    Failed(JobFailure),
}

impl JobStatus {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Shared id allocator + job table.
pub struct JobStore {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, JobStatus>>,
}

impl JobStore {
    /// An empty store; ids start at 1.
    pub fn new() -> JobStore {
        JobStore { next_id: AtomicU64::new(1), jobs: Mutex::new(HashMap::new()) }
    }

    /// Allocates an id and registers it as [`JobStatus::Queued`].
    pub fn create(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&self.jobs).insert(id, JobStatus::Queued);
        id
    }

    /// Replaces the status of `id`.
    pub fn set(&self, id: u64, status: JobStatus) {
        lock_unpoisoned(&self.jobs).insert(id, status);
    }

    /// Forgets `id` (used when admission control rejects the job).
    pub fn remove(&self, id: u64) {
        lock_unpoisoned(&self.jobs).remove(&id);
    }

    /// Snapshot of the status of `id`.
    pub fn get(&self, id: u64) -> Option<JobStatus> {
        lock_unpoisoned(&self.jobs).get(&id).cloned()
    }
}

impl Default for JobStore {
    fn default() -> Self {
        JobStore::new()
    }
}

fn generator_config(spec: &JobSpec, n_threads: usize) -> GeneratorConfig {
    let mut config = GeneratorConfig { n_threads, seed: spec.seed, ..GeneratorConfig::default() };
    config.budgets.epsilon_t = spec.notebook_len.max(1) as f64;
    config.budgets.epsilon_d = spec.epsilon_d.unwrap_or_else(|| {
        0.5 * DistanceWeights::default().max_distance() * spec.notebook_len.max(1) as f64
    });
    config.generation_config.test.n_permutations = spec.n_permutations;
    config.generation_config.test.seed = spec.seed;
    config
}

/// Runs `f` with a panic guard: an unwinding job becomes a terminal
/// `job_panicked` failure instead of killing its worker thread and
/// leaving the client blocked on a `done` signal that never fires.
fn guard_panics<F>(f: F) -> Result<CompletedJob, JobFailure>
where
    F: FnOnce() -> Result<CompletedJob, JobFailure>,
{
    // AssertUnwindSafe: the per-job state `f` closes over is either
    // owned by the job (dropped with it) or behind poison-recovering
    // locks, so observing it after an unwind cannot see torn values.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let what = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        Err(JobFailure {
            status: 500,
            code: "job_panicked",
            message: format!("pipeline worker panicked: {what}"),
            retryable: false,
        })
    })
}

/// Runs one job to a terminal state in `store`, then fires its `done`
/// channel. Metrics accumulate in a per-request registry that merges
/// into `global` at the end, win or lose, so `/metrics` reflects every
/// request exactly once. A panic inside the pipeline is caught and
/// recorded as a terminal `job_panicked` failure — the client always
/// gets its `done` signal.
pub fn execute(
    job: Job,
    catalog: &Catalog,
    store: &JobStore,
    global: &Registry,
    n_threads: usize,
    store_retry: &RetryPolicy,
) {
    let id = job.spec.id;
    store.set(id, JobStatus::Running);
    let status = match guard_panics(|| run_job(&job, catalog, global, n_threads, store_retry)) {
        Ok(completed) => {
            global.inc(Metric::JobsCompleted);
            JobStatus::Done(Arc::new(completed))
        }
        Err(failure) => {
            if failure.status == 408 {
                global.inc(Metric::JobsCancelled);
            }
            JobStatus::Failed(failure)
        }
    };
    store.set(id, status);
    let _ = job.done.send(());
}

fn run_job(
    job: &Job,
    catalog: &Catalog,
    global: &Registry,
    n_threads: usize,
    store_retry: &RetryPolicy,
) -> Result<CompletedJob, JobFailure> {
    // A job that sat in the queue past its deadline must not load data
    // or start the pipeline at all.
    job.cancel.check().map_err(|e| JobFailure::from_pipeline(&PipelineError::from(e)))?;
    let table = catalog.get(&job.spec.dataset).map_err(|e| JobFailure::from_catalog(&e))?;
    let config = generator_config(&job.spec, n_threads);
    let per_request = Registry::new();
    let result = {
        // Root span carries the HTTP request id, so the span tree a
        // request produced can be found from its error envelope.
        let _root = per_request.span_with_value("request", job.spec.request_id);
        run_warm_or_cold(job, catalog, &table, &config, &per_request, store_retry)
    };
    global.merge(&per_request);
    let run = result.map_err(|e| JobFailure::from_pipeline(&e))?;
    let session = ExplorationSession::new(run, DistanceWeights::default())
        .with_cubes(catalog.groupby_cache());
    Ok(CompletedJob { dataset: job.spec.dataset.clone(), table, session })
}

/// Cold-or-warm dispatch. With a store configured, a fingerprint-matching
/// artifact replays Phases 0–2 (`store_hits`); anything else counts a
/// miss and falls back to the cold pipeline. A missing or unreadable
/// artifact additionally queues a background (re)build; a *valid*
/// artifact for a different prefix config does not — one request's
/// custom knobs must never clobber the default artifact. Either path
/// runs against the catalog's shared [`cn_pipeline::GroupByCache`], so
/// a repeat request over the same table contents re-evaluates its
/// hypothesis queries from cached dense cubes instead of re-scanning
/// (`groupby_cache_hits` in `/metrics`).
///
/// Failure handling (the cn-fault layer):
/// - A transient I/O read error is retried under `store_retry`
///   (`retry_attempts`); exhausting the attempts marks a store-health
///   failure and serves the request cold. While the store is degraded,
///   reads fail fast (single attempt) so a dead disk costs each request
///   one `read` instead of a full backoff ladder — and the first read
///   that succeeds heals the store.
/// - A damaged artifact (bad magic, checksum, version, invariants) is
///   quarantined on disk (`store_quarantined`, never deleted, never
///   clobbering an earlier quarantine) and rebuilt in the background.
fn run_warm_or_cold(
    job: &Job,
    catalog: &Catalog,
    table: &Table,
    config: &GeneratorConfig,
    obs: &Registry,
    store_retry: &RetryPolicy,
) -> Result<RunResult, PipelineError> {
    let cubes = catalog.groupby_cache();
    let Some(store) = catalog.store() else {
        return run_cancellable_cached(table, config, obs, &job.cancel, &cubes);
    };
    let name = &job.spec.dataset;
    let policy = if catalog.store_degraded() { RetryPolicy::none() } else { *store_retry };
    match retry(&policy, obs, || store.load(name)) {
        Ok(artifact) => {
            catalog.note_store_success();
            if artifact.fingerprint == prefix_fingerprint(table, config).to_string() {
                obs.inc(Metric::StoreHits);
                return run_from_store_cached(table, &artifact, config, obs, &job.cancel, &cubes);
            }
            obs.inc(Metric::StoreMisses);
        }
        Err(StoreError::NotFound(_)) => {
            // The disk answered; there is just nothing there yet.
            catalog.note_store_success();
            obs.inc(Metric::StoreMisses);
            catalog.request_build(name);
        }
        Err(StoreError::Io { .. }) => {
            // Retries exhausted: the disk is unhealthy. Do not queue a
            // rebuild (it would hit the same disk); serve cold and let
            // the degradation state machine decide.
            obs.inc(Metric::StoreMisses);
            catalog.note_store_failure();
        }
        Err(_) => {
            // Corrupt, wrong version, or invalid: deterministic damage,
            // never fatal for the request. Quarantine the evidence,
            // count it, rebuild it, serve this one cold.
            catalog.note_store_success();
            obs.inc(Metric::StoreMisses);
            obs.inc(Metric::StoreInvalid);
            if let Ok(Some(_)) = store.quarantine(name) {
                obs.inc(Metric::StoreQuarantined);
            }
            catalog.request_build(name);
        }
    }
    run_cancellable_cached(table, config, obs, &job.cancel, &cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn store_with_catalog() -> (JobStore, Catalog, Arc<Registry>) {
        let global = Arc::new(Registry::new());
        let mut catalog = Catalog::new(2, global.clone());
        catalog.register_table("demo", cn_datagen::enedis_like(cn_datagen::Scale::TEST, 3));
        (JobStore::new(), catalog, global)
    }

    fn spec(id: u64, dataset: &str) -> JobSpec {
        JobSpec {
            id,
            request_id: id,
            dataset: dataset.to_string(),
            notebook_len: 3,
            n_permutations: 99,
            seed: 1,
            epsilon_d: None,
        }
    }

    fn run(job: Job, catalog: &Catalog, store: &JobStore, global: &Registry) {
        execute(job, catalog, store, global, 2, &RetryPolicy::default());
    }

    #[test]
    fn a_job_runs_to_done_and_counts() {
        let (store, catalog, global) = store_with_catalog();
        let id = store.create();
        assert_eq!(id, 1);
        let (tx, rx) = mpsc::channel();
        let job = Job { spec: spec(id, "demo"), cancel: CancelToken::new(), done: tx };
        run(job, &catalog, &store, &global);
        rx.recv().unwrap();
        let status = store.get(id).unwrap();
        assert_eq!(status.name(), "done");
        let JobStatus::Done(completed) = status else { panic!("expected done") };
        assert!(!completed.session.run().notebook.is_empty());
        assert!(completed.session.suggest(0, 2).is_ok());
        assert_eq!(global.get(Metric::JobsCompleted), 1);
        // The per-request pipeline counters merged into the global view.
        assert!(global.get(Metric::TestsPerformed) > 0);
    }

    #[test]
    fn repeat_jobs_hit_the_shared_groupby_cache() {
        let (store, catalog, global) = store_with_catalog();
        for expected_hits_after in [false, true] {
            let id = store.create();
            let (tx, rx) = mpsc::channel();
            let job = Job { spec: spec(id, "demo"), cancel: CancelToken::new(), done: tx };
            run(job, &catalog, &store, &global);
            rx.recv().unwrap();
            assert_eq!(store.get(id).unwrap().name(), "done");
            if expected_hits_after {
                assert!(
                    global.get(Metric::GroupbyCacheHits) > 0,
                    "an identical repeat request must reuse the cached cubes"
                );
            } else {
                assert!(global.get(Metric::GroupbyCacheMisses) > 0, "first request builds");
                assert_eq!(global.get(Metric::GroupbyCacheHits), 0);
            }
        }
        // Both runs produced the same notebook (cache is transparent).
        let JobStatus::Done(a) = store.get(1).unwrap() else { panic!() };
        let JobStatus::Done(b) = store.get(2).unwrap() else { panic!() };
        assert_eq!(
            cn_notebook::to_markdown(&a.session.run().notebook),
            cn_notebook::to_markdown(&b.session.run().notebook),
        );
        // The session carries the shared cube cache for continuations.
        assert!(a.session.cubes().is_some());
    }

    #[test]
    fn expired_deadlines_and_unknown_datasets_fail_typed() {
        let (store, catalog, global) = store_with_catalog();
        let (tx, _rx) = mpsc::channel();
        let id = store.create();
        let job = Job {
            spec: spec(id, "demo"),
            cancel: CancelToken::with_deadline(Duration::ZERO),
            done: tx.clone(),
        };
        run(job, &catalog, &store, &global);
        let JobStatus::Failed(f) = store.get(id).unwrap() else { panic!("expected failure") };
        assert_eq!(f.status, 408);
        assert!(f.message.contains("deadline"));
        assert_eq!(global.get(Metric::JobsCancelled), 1);

        let id = store.create();
        let job = Job { spec: spec(id, "nope"), cancel: CancelToken::new(), done: tx };
        run(job, &catalog, &store, &global);
        let JobStatus::Failed(f) = store.get(id).unwrap() else { panic!("expected failure") };
        assert_eq!(f.status, 404);
    }

    #[test]
    fn a_panicking_job_becomes_a_terminal_failure_not_a_hang() {
        // `CompletedJob` carries live sessions and has no `Debug`, so
        // unwrap the error arm by hand.
        fn failure_of(r: Result<CompletedJob, JobFailure>) -> JobFailure {
            match r {
                Ok(_) => panic!("expected the guarded job to fail"),
                Err(f) => f,
            }
        }
        let f = failure_of(guard_panics(|| panic!("cube exploded at row {}", 42)));
        assert_eq!(f.status, 500);
        assert_eq!(f.code, "job_panicked");
        assert!(f.message.contains("cube exploded at row 42"), "{}", f.message);
        assert!(!f.retryable);
        // &str payloads are captured too.
        let f = failure_of(guard_panics(|| panic!("static str boom")));
        assert!(f.message.contains("static str boom"));
        // A non-panicking job passes through untouched.
        assert!(guard_panics(|| {
            Err(JobFailure {
                status: 404,
                code: "not_found",
                message: String::new(),
                retryable: false,
            })
        })
        .is_err());
    }
}
