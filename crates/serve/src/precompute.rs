//! The background precomputation worker: builds warm-start artifacts so
//! requests skip Phases 0–2 entirely.
//!
//! One thread per server, spawned by [`crate::server::start`] only when a
//! store directory is configured. At startup it scans the store — an
//! artifact already on disk marks its dataset warm immediately; every
//! other registered dataset is queued for building. Afterwards it drains
//! build requests (startup gaps plus first-miss triggers from the job
//! workers) until the catalog's build channel closes at shutdown.
//!
//! Artifacts are built with the *default request* configuration (seed 0,
//! 200 permutations, no sampling — the values `POST /v1/notebooks` uses
//! when `seed`/`perms` are omitted), so the common request is the one
//! that warm-starts. Requests that override prefix knobs simply miss and
//! run cold; they never clobber the default artifact.

use crate::catalog::{Catalog, StoreStatus};
use cn_fault::{retry, RetryPolicy};
use cn_obs::{Metric, Registry};
use cn_pipeline::{build_store_artifact_observed, GeneratorConfig};
use cn_store::StoreError;
use std::sync::mpsc;

/// The build configuration for precomputed artifacts: what
/// [`crate::jobs`] derives for a request that sets no `seed`, `perms`,
/// or sampling overrides. Only prefix fields matter for the fingerprint;
/// budgets and thread count are free.
pub(crate) fn default_build_config(n_threads: usize) -> GeneratorConfig {
    let mut config = GeneratorConfig { n_threads, seed: 0, ..GeneratorConfig::default() };
    config.generation_config.test.n_permutations = 200;
    config.generation_config.test.seed = 0;
    config
}

/// Body of the `cn-serve-precompute` thread.
pub(crate) fn worker_loop(
    catalog: &Catalog,
    global: &Registry,
    n_threads: usize,
    store_retry: &RetryPolicy,
    rx: &mpsc::Receiver<String>,
) {
    // Startup scan: adopt what is already on disk, queue the rest.
    for (name, _) in catalog.list() {
        let Some(store) = catalog.store() else { return };
        match retry(store_retry, global, || store.load(&name)) {
            Ok(artifact) => {
                catalog.note_store_success();
                catalog.mark_store_status(&name, StoreStatus::Warm, Some(artifact.fingerprint));
            }
            Err(StoreError::NotFound(_)) => {
                catalog.note_store_success();
                catalog.request_build(&name);
            }
            Err(StoreError::Io { .. }) => {
                // Retries exhausted at startup: the disk is unhealthy.
                // Leave the dataset cold and let request traffic drive
                // the degradation/recovery state machine.
                catalog.note_store_failure();
            }
            Err(_) => {
                // Corrupt or version-mismatched leftovers: quarantine
                // the evidence, count it, rebuild.
                catalog.note_store_success();
                global.inc(Metric::StoreInvalid);
                if let Ok(Some(_)) = store.quarantine(&name) {
                    global.inc(Metric::StoreQuarantined);
                }
                catalog.request_build(&name);
            }
        }
    }
    while let Ok(name) = rx.recv() {
        build_one(catalog, global, n_threads, store_retry, &name);
    }
}

/// Builds and persists one artifact, driving the status Cold→Building→
/// Warm (or back to Cold on failure — a failed build is a counter, not a
/// crashed worker).
fn build_one(
    catalog: &Catalog,
    global: &Registry,
    n_threads: usize,
    store_retry: &RetryPolicy,
    name: &str,
) {
    global.inc(Metric::StoreBuildsStarted);
    catalog.mark_store_status(name, StoreStatus::Building, None);
    let built = (|| {
        let table = catalog.get(name).map_err(|e| e.to_string())?;
        let config = default_build_config(n_threads);
        let per_build = Registry::new();
        let artifact = build_store_artifact_observed(&table, &config, name, &per_build)
            .map_err(|e| e.to_string())?;
        global.merge(&per_build);
        let store = catalog.store().ok_or("store detached")?;
        match retry(store_retry, global, || store.save(&artifact)) {
            Ok(_) => catalog.note_store_success(),
            Err(e) => {
                if matches!(e, StoreError::Io { .. }) {
                    catalog.note_store_failure();
                }
                return Err(e.to_string());
            }
        }
        Ok::<String, String>(artifact.fingerprint)
    })();
    match built {
        Ok(fingerprint) => {
            global.inc(Metric::StoreBuildsCompleted);
            catalog.mark_store_status(name, StoreStatus::Warm, Some(fingerprint));
        }
        Err(message) => {
            global.inc(Metric::StoreBuildsFailed);
            catalog.mark_store_status(name, StoreStatus::Cold, None);
            eprintln!("precompute: build of `{name}` failed: {message}");
        }
    }
}
