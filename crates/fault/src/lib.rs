//! # cn-fault — deterministic fault injection and retry/backoff
//!
//! The serving story of this workspace (cn-serve over cn-store warm
//! starts) is only production-grade if its *failure* paths are as tested
//! as the happy path. This crate supplies the two halves of that story:
//!
//! - **Fault injection** ([`plan`]): a seeded, schedule-based
//!   [`FaultPlan`] ("fail the 3rd store read with EIO", "delay every
//!   artifact write 200 ms", "flip one byte of the next read") installed
//!   behind the [`FaultHook`] trait. Instrumented code calls
//!   [`point`]/[`corrupt`] at named sites; with the `injection` cargo
//!   feature **disabled** (the default, and what `cargo build --release`
//!   produces) those calls are inlined empty functions — production
//!   builds pay literally nothing. The chaos test suites enable the
//!   feature through their dev-dependencies.
//! - **Retry/backoff** ([`retry`]): a [`RetryPolicy`] value (max
//!   attempts, exponential backoff with deterministic seeded jitter)
//!   and a [`retry()`](retry::retry) combinator that re-runs fallible
//!   operations whose error says it is transient via the [`Retryable`]
//!   trait (`StoreError::Io` is; a corrupt artifact or a degenerate
//!   table never will be). Every re-attempt counts `retry_attempts` and
//!   records its backoff in the `retry_backoff_ms` histogram, so
//!   `/metrics` shows exactly how hard the server is fighting its disk.
//!
//! Both halves are deterministic by construction: the schedule decides
//! *which* operation fails (no wall-clock races) and the jitter is a
//! pure function of `(seed, attempt)`, so a chaos run can assert
//! byte-identical output against the fault-free run.

pub mod plan;
pub mod retry;

pub use plan::{
    corrupt, installed, point, FaultAction, FaultHook, FaultPlan, FaultRule, InjectedFault,
};
#[cfg(feature = "injection")]
pub use plan::{install, uninstall};
pub use retry::{retry, retry_quiet, RetryPolicy, Retryable};
