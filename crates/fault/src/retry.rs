//! Retry policies with exponential backoff and deterministic jitter.
//!
//! A [`RetryPolicy`] is a plain value (cheap to copy into configs) and
//! [`retry`] is the one combinator: re-run the operation while its
//! error claims to be transient ([`Retryable`]), sleeping a backoff
//! that doubles per attempt with *seeded* jitter — a pure function of
//! `(seed, attempt)`, so two runs of the same chaos schedule sleep the
//! same amounts and produce the same metrics.

use crate::plan::mix;
use cn_obs::{Hist, Metric, Registry};
use std::time::Duration;

/// Classifies an error as transient (worth retrying) or permanent.
///
/// The rule of thumb across the workspace: **I/O is transient,
/// everything else is deterministic.** A flapping disk read may succeed
/// on the next attempt; a corrupt artifact, a version-mismatched
/// envelope, or a degenerate table will fail identically forever, and
/// retrying it only burns latency the caller could spend on the cold
/// fallback path.
pub trait Retryable {
    /// True when a retry of the same operation could plausibly succeed.
    fn retryable(&self) -> bool;
}

impl Retryable for crate::plan::InjectedFault {
    fn retryable(&self) -> bool {
        true // injected faults model transient I/O
    }
}

impl Retryable for std::io::Error {
    fn retryable(&self) -> bool {
        true
    }
}

/// Max attempts + exponential backoff with deterministic seeded jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); `1` disables retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Seed of the jitter stream (pure function of seed and attempt).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            jitter_seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The default backoff shape with `max_attempts` total attempts.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts: max_attempts.max(1), ..RetryPolicy::default() }
    }

    /// A policy that never retries (single attempt) — what a degraded
    /// server uses to fail fast onto its cold path.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new(1)
    }

    /// Replaces the base backoff.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Replaces the backoff cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Replaces the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Backoff before retry number `attempt` (1-based): exponential
    /// growth capped at [`RetryPolicy::cap`], with "equal jitter" — half
    /// the exponential delay fixed, half drawn deterministically from
    /// the seeded stream. Monotone in expectation, never above the cap.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let exp = self.base.saturating_mul(1u32 << doublings).min(self.cap);
        let half = exp / 2;
        let span_ns = half.as_nanos().min(u128::from(u64::MAX)) as u64;
        let jitter_ns = if span_ns == 0 {
            0
        } else {
            mix(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9)) % (span_ns + 1)
        };
        half + Duration::from_nanos(jitter_ns)
    }
}

/// Runs `op` under `policy`: returns the first success, or the last
/// error once attempts are exhausted or the error is permanent. Every
/// *re*-attempt increments `retry_attempts` and records its backoff in
/// the `retry_backoff_ms` histogram of `obs`.
pub fn retry<T, E: Retryable>(
    policy: &RetryPolicy,
    obs: &Registry,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) => {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) || !e.retryable() {
                    return Err(e);
                }
                let delay = policy.backoff(attempt);
                obs.inc(Metric::RetryAttempts);
                obs.record(Hist::RetryBackoffMs, delay.as_millis() as u64);
                std::thread::sleep(delay);
            }
        }
    }
}

/// [`retry`] without metrics (counts into the discard sink).
pub fn retry_quiet<T, E: Retryable>(
    policy: &RetryPolicy,
    op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    retry(policy, Registry::discard(), op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug)]
    struct Transient(bool);
    impl Retryable for Transient {
        fn retryable(&self) -> bool {
            self.0
        }
    }

    fn flaky(fail_first: usize) -> impl FnMut() -> Result<u32, Transient> {
        let mut calls = 0;
        move || {
            calls += 1;
            if calls <= fail_first {
                Err(Transient(true))
            } else {
                Ok(calls as u32)
            }
        }
    }

    #[test]
    fn succeeds_after_transient_failures_and_counts_attempts() {
        let obs = Arc::new(Registry::new());
        let policy = RetryPolicy::new(4).with_base(Duration::from_millis(1));
        let v = retry(&policy, &obs, flaky(2)).unwrap();
        assert_eq!(v, 3, "two failures, success on the third call");
        assert_eq!(obs.get(Metric::RetryAttempts), 2);
    }

    #[test]
    fn exhausts_attempts_then_returns_the_error() {
        let obs = Registry::new();
        let policy = RetryPolicy::new(3).with_base(Duration::from_millis(1));
        assert!(retry(&policy, &obs, flaky(99)).is_err());
        assert_eq!(obs.get(Metric::RetryAttempts), 2, "3 attempts = 2 retries");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let obs = Registry::new();
        let policy = RetryPolicy::new(5).with_base(Duration::from_millis(1));
        let mut calls = 0;
        let r: Result<(), Transient> = retry(&policy, &obs, || {
            calls += 1;
            Err(Transient(false))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
        assert_eq!(obs.get(Metric::RetryAttempts), 0);
    }

    #[test]
    fn single_attempt_policy_fails_fast() {
        let mut calls = 0;
        let r: Result<(), Transient> = retry_quiet(&RetryPolicy::none(), || {
            calls += 1;
            Err(Transient(true))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let p = RetryPolicy::new(8)
            .with_base(Duration::from_millis(10))
            .with_cap(Duration::from_millis(100))
            .with_seed(42);
        let again = p;
        for attempt in 1..8 {
            let d = p.backoff(attempt);
            assert_eq!(d, again.backoff(attempt), "same seed, same jitter");
            assert!(d <= Duration::from_millis(100), "cap respected at attempt {attempt}");
            assert!(d >= p.base.min(Duration::from_millis(100)) / 2);
        }
        // The exponential half grows until the cap takes over.
        assert!(p.backoff(3) >= Duration::from_millis(20));
        let other = p.with_seed(43);
        assert_ne!(other.backoff(1), p.backoff(1), "seed changes the jitter stream");
    }
}
