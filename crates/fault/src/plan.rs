//! Seeded, schedule-based fault plans behind a zero-cost hook.
//!
//! Instrumented code (cn-store, cn-serve) calls [`point`] and
//! [`corrupt`] at named sites; what happens there is decided by the
//! installed [`FaultHook`], normally a [`FaultPlan`]. A plan is a list
//! of [`FaultRule`]s keyed by site name, each firing on a deterministic
//! *occurrence window* — "after `skip` clean passes, fire `times`
//! times" — so a chaos test can say "fail the 2nd and 3rd store read"
//! and get exactly that, independent of thread scheduling.
//!
//! With the `injection` cargo feature disabled (the default), [`point`]
//! and [`corrupt`] compile to inlined empty bodies and no hook can be
//! installed: the production binary carries no branch, no atomic load,
//! no anything, at any fault site.

use cn_obs::sync::lock_unpoisoned;
use cn_obs::{Metric, Registry};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The error a [`FaultAction::Fail`] rule injects, carrying the site it
/// fired at. Callers map it into their own error taxonomy (cn-store
/// turns it into `StoreError::Io`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The fault site that fired.
    pub site: String,
    /// The configured message (e.g. "EIO").
    pub message: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}: {}", self.site, self.message)
    }
}

impl std::error::Error for InjectedFault {}

/// What a matching rule does to the operation at its site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an [`InjectedFault`] carrying `message`.
    Fail {
        /// Message the injected error carries (e.g. "EIO").
        message: String,
    },
    /// The operation is delayed by `ms` milliseconds, then proceeds.
    Delay {
        /// Sleep applied before the operation continues.
        ms: u64,
    },
    /// One byte of the operation's buffer is flipped (the byte and bit
    /// are a pure function of the plan seed and the occurrence index).
    CorruptByte,
}

/// One schedule entry: at `site`, skip `skip` occurrences, then apply
/// `action` for the next `times` occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Site name the rule matches exactly (e.g. `store.read`).
    pub site: String,
    /// Clean occurrences before the rule starts firing.
    pub skip: u64,
    /// Occurrences the rule fires for (`u64::MAX` ≈ forever).
    pub times: u64,
    /// What firing does.
    pub action: FaultAction,
}

impl FaultRule {
    fn fires_at(&self, occurrence: u64) -> bool {
        occurrence >= self.skip && occurrence - self.skip < self.times
    }
}

/// The decision surface instrumented code consults. Implemented by
/// [`FaultPlan`]; test harnesses can install their own.
pub trait FaultHook: Send + Sync {
    /// Called at a fault site before the real operation. `Err` makes
    /// the operation fail; the hook may also sleep (delay injection).
    fn fire(&self, site: &str) -> Result<(), InjectedFault>;

    /// Called with an operation's buffer; returns true when the hook
    /// mutated it (corruption injection).
    fn mutate(&self, site: &str, bytes: &mut [u8]) -> bool;
}

/// A deterministic fault schedule. Build one with the chainable
/// constructors, then [`install`] it (requires the `injection` feature):
///
/// ```
/// use cn_fault::{FaultHook, FaultPlan};
/// let plan = FaultPlan::seeded(7)
///     .fail("store.read", 0, 2, "EIO")     // first two reads fail
///     .delay("store.write", 0, 1, 200)     // first write +200 ms
///     .corrupt_bytes("store.read.bytes", 1, 1); // 2nd read corrupted
/// assert!(plan.fire("store.read").is_err());
/// assert!(plan.fire("store.read").is_err());
/// assert!(plan.fire("store.read").is_ok(), "third read is clean");
/// ```
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Counters for `faults_injected`; [`Registry::discard`] until
    /// [`FaultPlan::observe`] points somewhere real.
    registry: Mutex<Option<Arc<Registry>>>,
    /// Per-site occurrence counters (fire and mutate count separately
    /// because callers use distinct site names for buffers).
    hits: Mutex<HashMap<String, u64>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// An empty plan; `seed` drives corruption byte/bit choices.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            registry: Mutex::new(None),
            hits: Mutex::new(HashMap::new()),
        }
    }

    /// Counts injected faults (`faults_injected`) into `registry`.
    pub fn observe(self, registry: Arc<Registry>) -> Self {
        *lock_unpoisoned(&self.registry) = Some(registry);
        self
    }

    /// Adds a fail rule: at `site`, after `skip` clean passes, the next
    /// `times` occurrences fail with `message`.
    pub fn fail(mut self, site: &str, skip: u64, times: u64, message: &str) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            skip,
            times,
            action: FaultAction::Fail { message: message.to_string() },
        });
        self
    }

    /// Adds a delay rule: matching occurrences sleep `ms` milliseconds.
    pub fn delay(mut self, site: &str, skip: u64, times: u64, ms: u64) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            skip,
            times,
            action: FaultAction::Delay { ms },
        });
        self
    }

    /// Adds a corruption rule: matching occurrences get one byte
    /// flipped (deterministically chosen from the plan seed).
    pub fn corrupt_bytes(mut self, site: &str, skip: u64, times: u64) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            skip,
            times,
            action: FaultAction::CorruptByte,
        });
        self
    }

    fn next_occurrence(&self, site: &str) -> u64 {
        let mut hits = lock_unpoisoned(&self.hits);
        let n = hits.entry(site.to_string()).or_insert(0);
        let occurrence = *n;
        *n += 1;
        occurrence
    }

    fn count_injected(&self) {
        let registry = lock_unpoisoned(&self.registry);
        registry.as_deref().unwrap_or_else(|| Registry::discard()).inc(Metric::FaultsInjected);
    }
}

/// xorshift64* — the deterministic "randomness" behind jitter and
/// corruption choices. Never `0` in, never `0` out.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

impl FaultHook for FaultPlan {
    fn fire(&self, site: &str) -> Result<(), InjectedFault> {
        let occurrence = self.next_occurrence(site);
        let mut result = Ok(());
        for rule in self.rules.iter().filter(|r| r.site == site && r.fires_at(occurrence)) {
            match &rule.action {
                FaultAction::Delay { ms } => {
                    self.count_injected();
                    // cn-lint: allow(CN-D3, injected latency IS the fault being simulated)
                    std::thread::sleep(Duration::from_millis(*ms));
                }
                FaultAction::Fail { message } => {
                    self.count_injected();
                    result =
                        Err(InjectedFault { site: site.to_string(), message: message.clone() });
                }
                // Corruption rules only make sense where a buffer is
                // offered; at a plain point they are inert.
                FaultAction::CorruptByte => {}
            }
        }
        result
    }

    fn mutate(&self, site: &str, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let occurrence = self.next_occurrence(site);
        let mut mutated = false;
        for (i, _) in self.rules.iter().enumerate().filter(|(_, r)| {
            r.site == site && r.action == FaultAction::CorruptByte && r.fires_at(occurrence)
        }) {
            self.count_injected();
            let r = mix(self.seed ^ occurrence.wrapping_mul(0x9e37) ^ i as u64);
            let index = (r as usize) % bytes.len();
            let bit = (r >> 32) % 8;
            bytes[index] ^= 1 << bit;
            mutated = true;
        }
        mutated
    }
}

#[cfg(feature = "injection")]
static HOOK: Mutex<Option<Arc<dyn FaultHook>>> = Mutex::new(None);

/// Installs `hook` process-wide (replacing any previous hook). Only
/// meaningful with the `injection` feature; without it this function
/// does not exist, so code that must install a hook fails to compile
/// instead of silently testing nothing.
#[cfg(feature = "injection")]
pub fn install(hook: Arc<dyn FaultHook>) {
    *lock_unpoisoned(&HOOK) = Some(hook);
}

/// Removes the installed hook; every site reverts to a clean pass.
#[cfg(feature = "injection")]
pub fn uninstall() {
    *lock_unpoisoned(&HOOK) = None;
}

/// True when a hook is installed (always false without `injection`).
pub fn installed() -> bool {
    #[cfg(feature = "injection")]
    {
        lock_unpoisoned(&HOOK).is_some()
    }
    #[cfg(not(feature = "injection"))]
    {
        false
    }
}

/// A fault site: `Err` when the installed plan injects a failure here.
/// Compiles to an inlined `Ok(())` without the `injection` feature.
#[inline]
pub fn point(site: &str) -> Result<(), InjectedFault> {
    #[cfg(feature = "injection")]
    {
        let hook = lock_unpoisoned(&HOOK).clone();
        if let Some(hook) = hook {
            return hook.fire(site);
        }
    }
    let _ = site;
    Ok(())
}

/// A corruption site: the installed plan may flip bytes in `bytes`;
/// returns true when it did. Compiles to an inlined `false` without the
/// `injection` feature.
#[inline]
pub fn corrupt(site: &str, bytes: &mut [u8]) -> bool {
    #[cfg(feature = "injection")]
    {
        let hook = lock_unpoisoned(&HOOK).clone();
        if let Some(hook) = hook {
            return hook.mutate(site, bytes);
        }
    }
    let _ = (site, bytes);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fire_on_exact_occurrences() {
        let plan = FaultPlan::seeded(1).fail("s.read", 1, 2, "EIO");
        assert!(plan.fire("s.read").is_ok(), "occurrence 0 skipped");
        let e = plan.fire("s.read").unwrap_err();
        assert_eq!(e.site, "s.read");
        assert!(e.to_string().contains("EIO"));
        assert!(plan.fire("s.read").is_err(), "occurrence 2 still in window");
        assert!(plan.fire("s.read").is_ok(), "window exhausted");
        assert!(plan.fire("s.other").is_ok(), "sites are independent");
    }

    #[test]
    fn corruption_is_deterministic_in_the_seed() {
        let flip = |seed: u64| {
            let plan = FaultPlan::seeded(seed).corrupt_bytes("b", 0, 1);
            let mut bytes = vec![0u8; 64];
            assert!(plan.mutate("b", &mut bytes));
            assert!(!plan.mutate("b", &mut bytes), "only once");
            bytes
        };
        assert_eq!(flip(7), flip(7), "same seed, same flip");
        assert_ne!(flip(7), vec![0u8; 64], "exactly one bit differs");
        let (a, b) = (flip(7), flip(8));
        // Different seeds flip different positions (with these two they do).
        assert_ne!(a, b);
    }

    #[test]
    fn injected_faults_are_counted_into_the_registry() {
        let registry = Arc::new(Registry::new());
        let plan = FaultPlan::seeded(3)
            .fail("x", 0, 1, "EIO")
            .delay("x", 1, 1, 1)
            .observe(registry.clone());
        assert!(plan.fire("x").is_err());
        assert!(plan.fire("x").is_ok(), "delay injects latency, not failure");
        assert_eq!(registry.get(Metric::FaultsInjected), 2);
    }

    #[test]
    fn delay_rules_sleep_then_proceed() {
        let plan = FaultPlan::seeded(1).delay("d", 0, 1, 30);
        let t0 = std::time::Instant::now();
        assert!(plan.fire("d").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        let t1 = std::time::Instant::now();
        assert!(plan.fire("d").is_ok());
        assert!(t1.elapsed() < Duration::from_millis(25), "window over, no delay");
    }

    #[cfg(feature = "injection")]
    #[test]
    fn global_hook_routes_points_and_uninstall_reverts() {
        // Other tests in this binary do not install hooks, so the global
        // is ours alone here.
        let plan = Arc::new(FaultPlan::seeded(5).fail("g.site", 0, u64::MAX, "EIO"));
        install(plan);
        assert!(installed());
        assert!(point("g.site").is_err());
        assert!(point("g.unrelated").is_ok());
        uninstall();
        assert!(!installed());
        assert!(point("g.site").is_ok());
    }

    #[test]
    fn without_installation_points_are_clean() {
        assert!(point("never.installed").is_ok());
        let mut b = vec![1, 2, 3];
        assert!(!corrupt("never.installed", &mut b));
        assert_eq!(b, vec![1, 2, 3]);
    }
}
