//! # cn-interest
//!
//! Scoring of comparison queries (Section 4.2):
//!
//! - [`conciseness`] — the non-monotonic tuple-to-group conciseness function
//!   `exp(−(γ − θα)² / θ^δ)` of Definition 4.3 (Figure 4).
//! - [`interest`] — the manifold interestingness
//!   `conciseness(θ_q, γ_q) × Σ_{i∈I_q} ω·sig(i)·(1 − credibility(i)/|Qⁱ|)`,
//!   with the component toggles behind the Table 7 generator variants.
//! - [`distance`] — the weighted Hamming distance over query parts, with
//!   `val, val'` weighted highest, then `B`, then `A`, then `M` and `agg`
//!   (a true metric; proptest-verified).
//! - [`cost`] — the query cost model; uniform by default per the Figure 5
//!   observation that all comparison queries cost roughly the same.

pub mod conciseness;
pub mod cost;
pub mod distance;
pub mod interest;

pub use conciseness::{conciseness, ConcisenessParams};
pub use cost::CostModel;
pub use distance::{distance, DistanceWeights};
pub use interest::{interestingness, score_queries, InterestComponents, InterestParams};
