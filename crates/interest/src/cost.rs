//! Query cost model (Section 4.2).
//!
//! "Given the form of comparison queries … the cost of all comparison
//! queries will roughly be the same" (confirmed by Figure 5), so the
//! default model charges every query one unit and the time budget `ε_t`
//! effectively bounds the number of queries in the notebook. A per-tuple
//! model is kept for the general TAP formulation.

use cn_insight::generation::CandidateQuery;

/// How the TAP charges a comparison query against the time budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Every query costs the same constant (the paper's working model).
    Uniform(f64),
    /// `base + per_tuple × θ_q` — proportional to the tuples scanned.
    PerTuple {
        /// Fixed per-query overhead.
        base: f64,
        /// Marginal cost per aggregated tuple.
        per_tuple: f64,
    },
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::Uniform(1.0)
    }
}

impl CostModel {
    /// Cost of one candidate query.
    pub fn cost(&self, query: &CandidateQuery) -> f64 {
        match *self {
            CostModel::Uniform(c) => c,
            CostModel::PerTuple { base, per_tuple } => base + per_tuple * query.theta as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_engine::{AggFn, ComparisonSpec};
    use cn_tabular::{AttrId, MeasureId};

    fn query(theta: usize) -> CandidateQuery {
        CandidateQuery {
            spec: ComparisonSpec {
                group_by: AttrId(0),
                select_on: AttrId(1),
                val: 0,
                val2: 1,
                measure: MeasureId(0),
                agg: AggFn::Sum,
            },
            insight_ids: vec![],
            theta,
            gamma: 1,
        }
    }

    #[test]
    fn uniform_ignores_size() {
        let m = CostModel::Uniform(1.0);
        assert_eq!(m.cost(&query(10)), m.cost(&query(10_000)));
    }

    #[test]
    fn per_tuple_scales() {
        let m = CostModel::PerTuple { base: 1.0, per_tuple: 0.001 };
        assert!(m.cost(&query(10_000)) > m.cost(&query(10)));
        assert!((m.cost(&query(1000)) - 2.0).abs() < 1e-12);
    }
}
