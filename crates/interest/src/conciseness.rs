//! The conciseness function of Definition 4.3 (Figure 4).

/// Parameters of the conciseness function.
///
/// - `alpha` "sets the growth rate of the ideal number of groups given the
///   number of tuples, behaving like the slope in a linear function";
/// - `delta` "allows to spread the ideal ratio".
///
/// Defaults are the empirically tuned trade-off used throughout the
/// experiments (the paper also tunes them empirically, Section 6.1):
/// aggregation queries produce far fewer groups than tuples, so the ideal
/// group count is `θ/50` with a spread growing like `√θ` — e.g. a query
/// aggregating 500 tuples peaks at 10 groups and still scores ≈ 0.8 at 20.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcisenessParams {
    /// Slope of the ideal tuple-to-group line.
    pub alpha: f64,
    /// Spread exponent.
    pub delta: f64,
}

impl Default for ConcisenessParams {
    fn default() -> Self {
        ConcisenessParams { alpha: 0.02, delta: 1.0 }
    }
}

/// `conciseness(θ_q, γ_q) = exp(−(γ_q − θ_q·α)² / θ_q^δ)`.
///
/// `theta` is the number of tuples aggregated by the query and `gamma` the
/// number of groups in its result. The zone `gamma > theta` is undefined in
/// the paper ("the number of groups being greater than the number of tuples
/// does not make sense"); we return 0 there, and 0 for an empty query.
pub fn conciseness(theta: usize, gamma: usize, params: &ConcisenessParams) -> f64 {
    if theta == 0 || gamma > theta || gamma == 0 {
        return 0.0;
    }
    let t = theta as f64;
    let g = gamma as f64;
    let dev = g - t * params.alpha;
    (-(dev * dev) / t.powf(params.delta)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_at_the_ideal_ratio() {
        let p = ConcisenessParams { alpha: 0.25, delta: 1.0 };
        // θ=100 → ideal γ=25.
        let at_peak = conciseness(100, 25, &p);
        assert!((at_peak - 1.0).abs() < 1e-12);
        assert!(conciseness(100, 10, &p) < at_peak);
        assert!(conciseness(100, 60, &p) < at_peak);
    }

    #[test]
    fn non_monotonic_in_gamma() {
        let p = ConcisenessParams::default();
        let values: Vec<f64> = (1..=100).map(|g| conciseness(100, g, &p)).collect();
        let max_idx =
            values.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(max_idx > 0 && max_idx < 99, "peak strictly inside");
        // Rises before the peak, falls after.
        assert!(values[0] < values[max_idx]);
        assert!(values[99] < values[max_idx]);
    }

    #[test]
    fn undefined_zone_is_zero() {
        let p = ConcisenessParams::default();
        assert_eq!(conciseness(10, 11, &p), 0.0);
        assert_eq!(conciseness(0, 0, &p), 0.0);
        assert_eq!(conciseness(10, 0, &p), 0.0);
    }

    #[test]
    fn delta_spreads_the_ridge() {
        // Larger δ → more tolerance for off-ideal group counts.
        let narrow = ConcisenessParams { alpha: 0.25, delta: 0.5 };
        let wide = ConcisenessParams { alpha: 0.25, delta: 2.0 };
        let off_ideal = (100, 60);
        assert!(
            conciseness(off_ideal.0, off_ideal.1, &wide)
                > conciseness(off_ideal.0, off_ideal.1, &narrow)
        );
    }

    #[test]
    fn bounded_in_unit_interval() {
        let p = ConcisenessParams::default();
        for theta in [1usize, 5, 50, 500, 5000] {
            for gamma in [1usize, 2, theta / 2 + 1, theta] {
                let c = conciseness(theta, gamma, &p);
                assert!((0.0..=1.0).contains(&c), "c({theta},{gamma}) = {c}");
            }
        }
    }
}
