//! The weighted Hamming distance between comparison queries (Section 4.2).
//!
//! "Weights are set to capture the cognitive effort of understanding the
//! transition from one comparison query to another, precisely: val, val'
//! the highest, followed by B, then A, and finally M and agg have the
//! lowest impact."
//!
//! Each query part is compared with the discrete metric and the weighted
//! sum is therefore itself a metric (symmetry and the triangle inequality
//! hold coordinate-wise) — the property Section 4.2 demands so that the TAP
//! never trades interestingness against a shortcut through a cheap query.

use cn_engine::ComparisonSpec;

/// Per-part weights of the distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceWeights {
    /// Weight of the first selected value `val`.
    pub val: f64,
    /// Weight of the second selected value `val'`.
    pub val2: f64,
    /// Weight of the selection attribute `B`.
    pub select_on: f64,
    /// Weight of the grouping attribute `A`.
    pub group_by: f64,
    /// Weight of the measure `M`.
    pub measure: f64,
    /// Weight of the aggregation function `agg`.
    pub agg: f64,
}

impl Default for DistanceWeights {
    fn default() -> Self {
        // The paper's ordering: val = val' > B > A > M = agg.
        DistanceWeights {
            val: 4.0,
            val2: 4.0,
            select_on: 3.0,
            group_by: 2.0,
            measure: 1.0,
            agg: 1.0,
        }
    }
}

impl DistanceWeights {
    /// Maximum possible distance (all parts differ).
    pub fn max_distance(&self) -> f64 {
        self.val + self.val2 + self.select_on + self.group_by + self.measure + self.agg
    }
}

/// Weighted Hamming distance between two comparison-query 6-tuples.
///
/// Value parts are only comparable within the same selection attribute: if
/// `B` differs, both value coordinates count as differing (codes of
/// different dictionaries never denote the same thing).
pub fn distance(a: &ComparisonSpec, b: &ComparisonSpec, w: &DistanceWeights) -> f64 {
    let mut d = 0.0;
    let same_b = a.select_on == b.select_on;
    if !same_b {
        d += w.select_on;
    }
    if !(same_b && a.val == b.val) {
        d += w.val;
    }
    if !(same_b && a.val2 == b.val2) {
        d += w.val2;
    }
    if a.group_by != b.group_by {
        d += w.group_by;
    }
    if a.measure != b.measure {
        d += w.measure;
    }
    if a.agg != b.agg {
        d += w.agg;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_engine::AggFn;
    use cn_tabular::{AttrId, MeasureId};

    fn spec(a: u16, b: u16, v: u32, v2: u32, m: u16, agg: AggFn) -> ComparisonSpec {
        ComparisonSpec {
            group_by: AttrId(a),
            select_on: AttrId(b),
            val: v,
            val2: v2,
            measure: MeasureId(m),
            agg,
        }
    }

    #[test]
    fn identity_and_symmetry() {
        let w = DistanceWeights::default();
        let q = spec(0, 1, 2, 3, 0, AggFn::Sum);
        let r = spec(1, 2, 2, 3, 1, AggFn::Avg);
        assert_eq!(distance(&q, &q, &w), 0.0);
        assert_eq!(distance(&q, &r, &w), distance(&r, &q, &w));
    }

    #[test]
    fn part_weights_match_paper_ordering() {
        let w = DistanceWeights::default();
        let base = spec(0, 1, 2, 3, 0, AggFn::Sum);
        let d_val = distance(&base, &spec(0, 1, 9, 3, 0, AggFn::Sum), &w);
        let d_b = distance(&base, &spec(0, 2, 2, 3, 0, AggFn::Sum), &w);
        let d_a = distance(&base, &spec(5, 1, 2, 3, 0, AggFn::Sum), &w);
        let d_m = distance(&base, &spec(0, 1, 2, 3, 1, AggFn::Sum), &w);
        let d_agg = distance(&base, &spec(0, 1, 2, 3, 0, AggFn::Avg), &w);
        // Changing B also invalidates both value coordinates.
        assert_eq!(d_b, w.select_on + w.val + w.val2);
        assert!(d_val > d_a && d_a > d_m);
        assert_eq!(d_m, d_agg);
    }

    #[test]
    fn changing_b_invalidates_values_even_with_equal_codes() {
        let w = DistanceWeights::default();
        let q = spec(0, 1, 2, 3, 0, AggFn::Sum);
        let r = spec(0, 2, 2, 3, 0, AggFn::Sum);
        // Same codes 2, 3 but different attribute: values differ too.
        assert_eq!(distance(&q, &r, &w), w.select_on + w.val + w.val2);
    }

    #[test]
    fn max_distance_when_everything_differs() {
        let w = DistanceWeights::default();
        let q = spec(0, 1, 2, 3, 0, AggFn::Sum);
        let r = spec(1, 2, 7, 8, 1, AggFn::Max);
        assert_eq!(distance(&q, &r, &w), w.max_distance());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cn_engine::AggFn;
    use cn_tabular::{AttrId, MeasureId};
    use proptest::prelude::*;

    fn arb_spec() -> impl Strategy<Value = ComparisonSpec> {
        (0u16..3, 0u16..3, 0u32..4, 0u32..4, 0u16..2, 0usize..3).prop_map(
            |(a, b, v, v2, m, agg)| ComparisonSpec {
                group_by: AttrId(a),
                select_on: AttrId(b),
                val: v,
                val2: v2,
                measure: MeasureId(m),
                agg: [AggFn::Sum, AggFn::Avg, AggFn::Max][agg],
            },
        )
    }

    fn arb_weights() -> impl Strategy<Value = DistanceWeights> {
        (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0)
            .prop_map(|(val, val2, select_on, group_by, measure, agg)| DistanceWeights {
                val,
                val2,
                select_on,
                group_by,
                measure,
                agg,
            })
    }

    proptest! {
        #[test]
        fn is_a_metric(q in arb_spec(), r in arb_spec(), s in arb_spec(), w in arb_weights()) {
            // Symmetry.
            prop_assert_eq!(distance(&q, &r, &w), distance(&r, &q, &w));
            // Identity of indiscernibles (weights may be 0, so only the
            // forward direction is universal).
            prop_assert_eq!(distance(&q, &q, &w), 0.0);
            // Triangle inequality.
            let qr = distance(&q, &r, &w);
            let rs = distance(&r, &s, &w);
            let qs = distance(&q, &s, &w);
            prop_assert!(qs <= qr + rs + 1e-12, "triangle violated: {} > {} + {}", qs, qr, rs);
            // Non-negativity.
            prop_assert!(qr >= 0.0);
        }
    }
}
