//! Comparison-query interestingness (Definition 4.3).

use crate::conciseness::{conciseness, ConcisenessParams};
use cn_insight::generation::{CandidateQuery, ScoredInsight};

/// Which components of the interestingness are active — the knobs behind
/// the user-study variants of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterestComponents {
    /// `conciseness × Σ ω·sig·(1 − cred/|Qⁱ|)` — the full Definition 4.3.
    Full,
    /// Significance only (`WSC-approx-sig`): `Σ ω·sig(i)`.
    SigOnly,
    /// Significance and credibility, no conciseness
    /// (`WSC-approx-sig-cred`): `Σ ω·sig·(1 − cred/|Qⁱ|)`.
    SigCred,
}

/// Parameters of the interestingness function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterestParams {
    /// `ω`, "a weight ruling the importance of sig(i)".
    pub omega: f64,
    /// Conciseness parameters (`α`, `δ`).
    pub conciseness: ConcisenessParams,
    /// Active components.
    pub components: InterestComponents,
}

impl Default for InterestParams {
    fn default() -> Self {
        InterestParams {
            omega: 1.0,
            conciseness: ConcisenessParams::default(),
            components: InterestComponents::Full,
        }
    }
}

/// `interest(q)` for a generated candidate, reading the supported insights'
/// significance and credibility from the generation output.
pub fn interestingness(
    query: &CandidateQuery,
    insights: &[ScoredInsight],
    params: &InterestParams,
) -> f64 {
    let mut sum = 0.0;
    for &id in &query.insight_ids {
        let s = &insights[id];
        let sig = s.detail.significance();
        let term = match params.components {
            InterestComponents::SigOnly => params.omega * sig,
            InterestComponents::Full | InterestComponents::SigCred => {
                params.omega * sig * s.credibility.type_ii_term()
            }
        };
        sum += term;
    }
    match params.components {
        InterestComponents::Full => {
            conciseness(query.theta, query.gamma, &params.conciseness) * sum
        }
        _ => sum,
    }
}

/// Scores every candidate query, recording the count of scores computed
/// and their distribution (in milli-units) into `obs`.
pub fn score_queries(
    queries: &[CandidateQuery],
    insights: &[ScoredInsight],
    params: &InterestParams,
    obs: &cn_obs::Registry,
) -> Vec<f64> {
    let scores: Vec<f64> = queries.iter().map(|q| interestingness(q, insights, params)).collect();
    obs.add(cn_obs::Metric::InterestScores, scores.len() as u64);
    for &s in &scores {
        obs.record(cn_obs::Hist::InterestScoreMilli, (s.max(0.0) * 1000.0) as u64);
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_engine::{AggFn, ComparisonSpec};
    use cn_insight::credibility::Credibility;
    use cn_insight::significance::SignificantInsight;
    use cn_insight::types::{Insight, InsightType};
    use cn_tabular::{AttrId, MeasureId};

    fn scored(sig: f64, supporting: u32, possible: u32) -> ScoredInsight {
        ScoredInsight {
            detail: SignificantInsight {
                insight: Insight {
                    measure: MeasureId(0),
                    select_on: AttrId(1),
                    val: 0,
                    val2: 1,
                    kind: InsightType::MeanGreater,
                },
                p_value: 1.0 - sig,
                raw_p: 1.0 - sig,
                observed_effect: 1.0,
            },
            credibility: Credibility { supporting, possible },
        }
    }

    fn query(ids: Vec<usize>, theta: usize, gamma: usize) -> CandidateQuery {
        CandidateQuery {
            spec: ComparisonSpec {
                group_by: AttrId(0),
                select_on: AttrId(1),
                val: 0,
                val2: 1,
                measure: MeasureId(0),
                agg: AggFn::Sum,
            },
            insight_ids: ids,
            theta,
            gamma,
        }
    }

    #[test]
    fn more_insights_more_interesting() {
        let insights = vec![scored(0.99, 1, 3), scored(0.97, 1, 3)];
        let p = InterestParams::default();
        let one = interestingness(&query(vec![0], 100, 25), &insights, &p);
        let two = interestingness(&query(vec![0, 1], 100, 25), &insights, &p);
        assert!(two > one);
    }

    #[test]
    fn surprise_term_rewards_low_credibility() {
        // Same significance; the insight fewer queries support ("more
        // surprising") scores higher.
        let insights = vec![scored(0.99, 1, 4), scored(0.99, 3, 4)];
        let p = InterestParams::default();
        let surprising = interestingness(&query(vec![0], 100, 25), &insights, &p);
        let mundane = interestingness(&query(vec![1], 100, 25), &insights, &p);
        assert!(surprising > mundane);
    }

    #[test]
    fn sig_only_ignores_credibility_and_conciseness() {
        let insights = vec![scored(0.99, 4, 4)]; // fully credible → surprise 0
        let full = InterestParams::default();
        let sig_only =
            InterestParams { components: InterestComponents::SigOnly, ..Default::default() };
        let q = query(vec![0], 100, 99); // terrible conciseness too
        assert_eq!(interestingness(&q, &insights, &full), 0.0);
        assert!((interestingness(&q, &insights, &sig_only) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn sig_cred_drops_only_conciseness() {
        let insights = vec![scored(0.98, 1, 2)];
        let q = query(vec![0], 100, 99); // conciseness ≈ 0
        let sig_cred =
            InterestParams { components: InterestComponents::SigCred, ..Default::default() };
        let expect = 0.98 * 0.5;
        assert!((interestingness(&q, &insights, &sig_cred) - expect).abs() < 1e-12);
    }

    #[test]
    fn omega_scales_linearly() {
        let insights = vec![scored(0.96, 1, 2)];
        let q = query(vec![0], 100, 25);
        let base = interestingness(&q, &insights, &InterestParams::default());
        let doubled =
            interestingness(&q, &insights, &InterestParams { omega: 2.0, ..Default::default() });
        assert!((doubled - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn empty_insight_list_scores_zero() {
        let insights: Vec<ScoredInsight> = Vec::new();
        let q = query(vec![], 100, 25);
        assert_eq!(interestingness(&q, &insights, &InterestParams::default()), 0.0);
    }
}
