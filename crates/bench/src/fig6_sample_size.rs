//! **Figure 6** — adjusting the sample size on the ENEDIS-shaped dataset:
//! runtime and fraction of insights detected, for unbalanced vs random
//! sampling (Section 6.3.1).

use crate::common::{f2, ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::significance::TestConfig;
use cn_core::prelude::*;
use std::time::Instant;

pub(crate) fn pipeline_config(opts: &Opts, sampling: SamplingStrategy) -> GeneratorConfig {
    GeneratorConfig {
        sampling,
        budgets: Budgets { epsilon_t: 10.0, epsilon_d: 60.0 },
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig {
                n_permutations: if opts.quick { 99 } else { 200 },
                seed: opts.seed,
                ..Default::default()
            },
            ..Default::default()
        },
        n_threads: opts.threads,
        seed: opts.seed,
        ..Default::default()
    }
}

/// Runs the Figure 6 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 6: sample-size tuning on ENEDIS-shaped data ==");
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);

    // Reference: the insights detected without sampling.
    let reference = run_generator(&table, opts, SamplingStrategy::None).0;
    let reference_keys = reference.insight_keys();
    println!("  reference: {} insights (no sampling)", reference_keys.len());

    let mut ctx = ExperimentCtx::new("fig6_sample_size", opts);
    ctx.header(&["strategy", "sample_pct", "runtime_s", "insights_found_pct"]);
    let fractions: &[f64] =
        if opts.quick { &[0.1, 0.4] } else { &[0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] };
    let mut curves: Vec<crate::plot::Series> = vec![
        crate::plot::Series { name: "unbalanced".into(), points: vec![] },
        crate::plot::Series { name: "random".into(), points: vec![] },
    ];
    for &fraction in fractions {
        for (si, (name, strategy)) in [
            ("unbalanced", SamplingStrategy::Unbalanced { fraction }),
            ("random", SamplingStrategy::Random { fraction }),
        ]
        .into_iter()
        .enumerate()
        {
            let (r, secs) = run_generator(&table, opts, strategy);
            let found = r.insight_keys();
            let pct = 100.0 * found.intersection(&reference_keys).count() as f64
                / reference_keys.len().max(1) as f64;
            curves[si].points.push((fraction * 100.0, pct));
            ctx.row(&[name.to_string(), f2(fraction * 100.0), f2(secs), f2(pct)]);
        }
    }
    crate::plot::write_svg(
        &opts.out_dir,
        "fig6_sample_size",
        &crate::plot::line_chart(
            "Figure 6: insights detected vs sample size (ENEDIS-shaped)",
            "sample %",
            "insights detected %",
            &curves,
        ),
    )?;
    ctx.note(
        "Insight recovery relative to the no-sampling run; unbalanced sampling \
         reaches a given recovery at smaller samples (Section 6.3.1's 20% vs 40%).",
    );
    ctx.finish()
}

fn run_generator(table: &Table, opts: &Opts, sampling: SamplingStrategy) -> (RunResult, f64) {
    let cfg = pipeline_config(opts, sampling);
    let t0 = Instant::now();
    let r = cn_core::pipeline::run(table, &cfg).expect("pipeline run");
    (r, t0.elapsed().as_secs_f64())
}
