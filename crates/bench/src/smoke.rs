//! `repro smoke` — a fast end-to-end pipeline run that exports the
//! cn-obs metrics report, plus the `validate-metrics` gate CI runs on
//! the exported JSON.

use crate::common::Opts;
use cn_core::datagen::{enedis_like, Scale};
use cn_core::obs::Registry;
use cn_core::prelude::*;
use std::path::Path;

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Runs a TEST-scale pipeline under a fresh registry and writes the
/// metrics report to `metrics` (when given). Any pipeline error fails
/// the process so CI trips.
pub fn run(opts: &Opts, metrics: Option<&Path>) -> std::io::Result<()> {
    println!("== smoke: end-to-end run with observability export ==");
    let table = enedis_like(Scale::TEST, opts.seed);
    let cfg = GeneratorConfig::builder()
        .budgets(6.0, 40.0)
        .n_threads(opts.threads)
        .seed(opts.seed)
        .build()
        .map_err(|e| invalid(e.to_string()))?;
    let registry = Registry::new();
    let result = run_observed(&table, &cfg, &registry).map_err(|e| invalid(e.to_string()))?;
    let report = registry.report();
    println!(
        "  {} insights tested, {} significant, notebook of {}",
        result.n_tested,
        result.n_significant,
        result.notebook.len()
    );
    print!("{}", report.to_text());
    if let Some(path) = metrics {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, report.to_json_string())?;
        println!("  wrote {}", path.display());
    }
    Ok(())
}

/// `repro validate-metrics <report.json>` — checks an exported report
/// against the checked-in `schemas/metrics.schema.json`.
pub fn validate(report_path: &Path, schema_path: &Path) -> std::io::Result<()> {
    let report: serde_json::Value = serde_json::from_str(&std::fs::read_to_string(report_path)?)
        .map_err(|e| invalid(format!("{}: {e}", report_path.display())))?;
    let schema: serde_json::Value = serde_json::from_str(&std::fs::read_to_string(schema_path)?)
        .map_err(|e| invalid(format!("{}: {e}", schema_path.display())))?;
    match cn_core::obs::schema::validate(&report, &schema) {
        Ok(()) => {
            println!("{} conforms to {}", report_path.display(), schema_path.display());
            Ok(())
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("  {e}");
            }
            Err(invalid(format!("{} schema violation(s)", errors.len())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cn_smoke_{}_{name}", std::process::id()))
    }

    #[test]
    fn smoke_report_validates_against_checked_in_schema() {
        let metrics = tmp("metrics.json");
        let opts = Opts { quick: true, threads: 2, ..Default::default() };
        run(&opts, Some(&metrics)).unwrap();
        // The checked-in schema lives at the repository root.
        let schema = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../schemas/metrics.schema.json");
        validate(&metrics, &schema).unwrap();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn validate_rejects_malformed_reports() {
        let bad = tmp("bad.json");
        std::fs::write(&bad, "{\"version\": 2, \"counters\": {}}").unwrap();
        let schema = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../schemas/metrics.schema.json");
        assert!(validate(&bad, &schema).is_err());
        std::fs::remove_file(&bad).ok();
    }
}
