//! **Ablations** — quantifying the design choices DESIGN.md calls out:
//!
//! 1. Credibility aggregation policy (`avg` vs `sum` vs any-agg): how much
//!    credibility spread each reading of Definition 3.11 produces.
//! 2. Distance weights: the paper's val/val' > B > A > M/agg ordering vs
//!    flat weights — effect on notebook step coherence.
//! 3. Conciseness parameters (α, δ): effect on which queries win the
//!    Algorithm 1 dedup.
//! 4. Local-search post-passes over Algorithm 3 (2-opt, swaps): what the
//!    paper's single greedy pass leaves on the table.

use crate::common::{f2, f3, ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::credibility::CredibilityPolicy;
use cn_core::interest::{ConcisenessParams, DistanceWeights};
use cn_core::prelude::*;
use cn_core::tap::eval::mean_std;
use cn_core::tap::{generate_instance, solve_heuristic, solve_heuristic_improved, InstanceConfig};

fn base(opts: &Opts) -> GeneratorConfig {
    crate::fig6_sample_size::pipeline_config(opts, SamplingStrategy::None)
}

fn credibility_policies(opts: &Opts, table: &Table, ctx: &mut ExperimentCtx) {
    for (name, policy) in [
        ("avg (default)", CredibilityPolicy::PerAttribute(cn_core::engine::AggFn::Avg)),
        ("sum", CredibilityPolicy::PerAttribute(cn_core::engine::AggFn::Sum)),
        ("any-agg", CredibilityPolicy::AnyAgg(cn_core::engine::AggFn::DEFAULT.to_vec())),
    ] {
        let mut cfg = base(opts);
        cfg.generation_config.credibility = policy;
        let r = cn_core::pipeline::run(table, &cfg).expect("pipeline run");
        let partial =
            r.insights.iter().filter(|s| s.credibility.supporting < s.credibility.possible).count();
        let mean_surprise = if r.insights.is_empty() {
            0.0
        } else {
            r.insights.iter().map(|s| s.credibility.type_ii_term()).sum::<f64>()
                / r.insights.len() as f64
        };
        ctx.row(&[
            format!("credibility={name}"),
            r.insights.len().to_string(),
            partial.to_string(),
            f3(mean_surprise),
            f3(r.solution.total_interest),
        ]);
    }
}

fn distance_weights(opts: &Opts, table: &Table, ctx: &mut ExperimentCtx) {
    for (name, weights) in [
        ("paper ordering (4/4/3/2/1/1)", DistanceWeights::default()),
        (
            "flat (1/1/1/1/1/1)",
            DistanceWeights {
                val: 1.0,
                val2: 1.0,
                select_on: 1.0,
                group_by: 1.0,
                measure: 1.0,
                agg: 1.0,
            },
        ),
    ] {
        let mut cfg = base(opts);
        cfg.distance = weights;
        // Keep the *relative* tightness comparable across weightings.
        cfg.budgets.epsilon_d = 0.4 * weights.max_distance() * cfg.budgets.epsilon_t;
        let r = cn_core::pipeline::run(table, &cfg).expect("pipeline run");
        let steps: Vec<f64> = r
            .solution
            .sequence
            .windows(2)
            .map(|w| {
                cn_core::interest::distance(&r.queries[w[0]].spec, &r.queries[w[1]].spec, &weights)
            })
            .collect();
        let (mean_step, _) = mean_std(&steps);
        ctx.row(&[
            format!("distance={name}"),
            r.notebook.len().to_string(),
            f2(mean_step / weights.max_distance()),
            f3(r.solution.total_interest),
            String::new(),
        ]);
    }
}

fn conciseness_params(opts: &Opts, table: &Table, ctx: &mut ExperimentCtx) {
    for (name, params) in [
        ("alpha=0.02 delta=1 (default)", ConcisenessParams { alpha: 0.02, delta: 1.0 }),
        ("alpha=0.25 delta=1 (paper-figure ratio)", ConcisenessParams { alpha: 0.25, delta: 1.0 }),
        ("alpha=0.02 delta=1.5 (wider ridge)", ConcisenessParams { alpha: 0.02, delta: 1.5 }),
    ] {
        let mut cfg = base(opts);
        cfg.interest.conciseness = params;
        let r = cn_core::pipeline::run(table, &cfg).expect("pipeline run");
        let mean_conc = if r.solution.sequence.is_empty() {
            0.0
        } else {
            r.solution
                .sequence
                .iter()
                .map(|&qi| {
                    cn_core::interest::conciseness(
                        r.queries[qi].theta,
                        r.queries[qi].gamma,
                        &params,
                    )
                })
                .sum::<f64>()
                / r.solution.sequence.len() as f64
        };
        ctx.row(&[
            format!("conciseness={name}"),
            r.notebook.len().to_string(),
            f3(mean_conc),
            f3(r.solution.total_interest),
            String::new(),
        ]);
    }
}

fn local_search(opts: &Opts, ctx: &mut ExperimentCtx) {
    // On the TAP directly: what do 2-opt + swaps add to Algorithm 3?
    let b = Budgets { epsilon_t: 10.0, epsilon_d: 1.0 };
    let mut gains = Vec::new();
    let mut dist_drops = Vec::new();
    let seeds = if opts.quick { 0..5u64 } else { 0..20u64 };
    for seed in seeds {
        let p = generate_instance(&InstanceConfig::euclidean(150, 5000 + seed));
        let plain = solve_heuristic(&p, &b);
        let improved = solve_heuristic_improved(&p, &b);
        if plain.total_interest > 0.0 {
            gains.push(
                100.0 * (improved.total_interest - plain.total_interest) / plain.total_interest,
            );
        }
        dist_drops.push(plain.total_distance - improved.total_distance);
    }
    let (g_mean, g_std) = mean_std(&gains);
    let (d_mean, _) = mean_std(&dist_drops);
    ctx.row(&[
        "local-search vs plain Algorithm 3".to_string(),
        format!("{} instances", gains.len()),
        format!("interest +{g_mean:.2}% ±{g_std:.2}"),
        format!("distance −{d_mean:.3}"),
        String::new(),
    ]);
}

/// Runs all ablations.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Ablations: design choices ==");
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);
    let mut ctx = ExperimentCtx::new("ablations", opts);
    ctx.header(&["variant", "a", "b", "c", "d"]);
    credibility_policies(opts, &table, &mut ctx);
    distance_weights(opts, &table, &mut ctx);
    conciseness_params(opts, &table, &mut ctx);
    local_search(opts, &mut ctx);
    ctx.note(
        "Columns are variant-specific: credibility rows = (insights, partially \
         credible, mean surprise, notebook interest); distance rows = (len, \
         normalized mean step, interest); conciseness rows = (len, mean \
         conciseness of selected queries, interest); local-search row = \
         (instances, interest gain, distance drop).",
    );
    ctx.finish()
}
