//! **Table 2** — description of the datasets: tuples, bytes, categorical
//! attributes, active-domain range, measures, and the number of possible
//! comparison queries (Lemma 3.2).

use crate::common::{ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, flights_like, vaccine_like, Scale};
use cn_core::insight::space::count_comparison_queries;
use cn_core::tabular::Table;

fn describe(ctx: &mut ExperimentCtx, t: &Table) {
    let cards: Vec<usize> = t.schema().attribute_ids().map(|a| t.active_domain_size(a)).collect();
    ctx.row(&[
        t.name().to_string(),
        t.n_rows().to_string(),
        format!("{}K", t.memory_bytes() / 1024),
        t.schema().n_attributes().to_string(),
        format!("{}-{}", cards.iter().min().unwrap(), cards.iter().max().unwrap()),
        t.schema().n_measures().to_string(),
        format!("{:.0}", count_comparison_queries(t, 2)),
    ]);
}

/// Runs the Table 2 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Table 2: dataset descriptions ==");
    let mut ctx = ExperimentCtx::new("table2_datasets", opts);
    ctx.header(&["name", "tuples", "bytes", "n_categ", "adom", "n_meas", "n_comparison_queries"]);
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    describe(&mut ctx, &vaccine_like(if opts.quick { scale } else { Scale::FULL }, opts.seed));
    describe(&mut ctx, &enedis_like(scale, opts.seed));
    describe(&mut ctx, &flights_like(scale, opts.seed));
    ctx.note(
        "Synthetic datasets shaped like the paper's Table 2 (Vaccine at full \
         scale; ENEDIS/Flights at bench scale — full-scale parameters in \
         cn-datagen). Comparison-query counts follow Lemma 3.2 with f = 2.",
    );
    ctx.finish()
}
