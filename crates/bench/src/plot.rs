//! Minimal SVG chart emitter for the experiment figures.
//!
//! No plotting dependency: the harness draws its own line charts, bar
//! charts, and histograms as self-contained `.svg` files next to the CSVs,
//! so `target/experiments/` holds viewable figures, not just tables.

use std::fmt::Write as _;

const W: f64 = 640.0;
const H: f64 = 400.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_B: f64 = 48.0;
const MARGIN_T: f64 = 28.0;
const MARGIN_R: f64 = 16.0;

/// Series colors (colorblind-safe-ish).
const COLORS: [&str; 6] = ["#4361ee", "#e4572e", "#2a9d8f", "#9b5de5", "#f4a261", "#577590"];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// One named line/scatter series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) points, in drawing order.
    pub points: Vec<(f64, f64)>,
}

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    // Degenerate or NaN range: a single tick.
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return vec![lo];
    }
    let raw = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| *s >= raw)
        .unwrap_or(mag * 10.0);
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Draws a multi-series line chart.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    let (x_lo, x_hi) =
        all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| (lo.min(x), hi.max(x)));
    let (y_lo, y_hi) =
        all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| (lo.min(y), hi.max(y)));
    let (x_lo, x_hi) = if all.is_empty() { (0.0, 1.0) } else { (x_lo, x_hi) };
    let (y_lo, y_hi) = if all.is_empty() { (0.0, 1.0) } else { (0.0f64.min(y_lo), y_hi) };
    let y_hi = if y_hi > y_lo { y_hi } else { y_lo + 1.0 };
    let x_hi = if x_hi > x_lo { x_hi } else { x_lo + 1.0 };

    let px = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * (W - MARGIN_L - MARGIN_R);
    let py = |y: f64| H - MARGIN_B - (y - y_lo) / (y_hi - y_lo) * (H - MARGIN_T - MARGIN_B);

    let mut svg = svg_header(title);
    axes(&mut svg, x_label, y_label);
    for t in nice_ticks(x_lo, x_hi, 6) {
        let x = px(t);
        let _ = writeln!(
            svg,
            "<line x1='{x:.1}' y1='{0:.1}' x2='{x:.1}' y2='{1:.1}' stroke='#ccc'/>\
             <text x='{x:.1}' y='{2:.1}' text-anchor='middle' font-size='11'>{3}</text>",
            H - MARGIN_B,
            H - MARGIN_B + 4.0,
            H - MARGIN_B + 18.0,
            fmt_tick(t)
        );
    }
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = py(t);
        let _ = writeln!(
            svg,
            "<line x1='{0:.1}' y1='{y:.1}' x2='{1:.1}' y2='{y:.1}' stroke='#eee'/>\
             <text x='{2:.1}' y='{3:.1}' text-anchor='end' font-size='11'>{4}</text>",
            MARGIN_L,
            W - MARGIN_R,
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for (si, s) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                format!("{}{:.1},{:.1}", if i == 0 { "M" } else { "L" }, px(x), py(y))
            })
            .collect();
        let _ = writeln!(
            svg,
            "<path d='{}' fill='none' stroke='{color}' stroke-width='2'/>",
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let _ =
                writeln!(svg, "<circle cx='{:.1}' cy='{:.1}' r='3' fill='{color}'/>", px(x), py(y));
        }
        let ly = MARGIN_T + 16.0 * si as f64;
        let _ = writeln!(
            svg,
            "<rect x='{0:.1}' y='{1:.1}' width='12' height='3' fill='{color}'/>\
             <text x='{2:.1}' y='{3:.1}' font-size='11'>{4}</text>",
            W - 170.0,
            ly,
            W - 154.0,
            ly + 5.0,
            esc(&s.name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Draws a grouped bar chart: one group per label, one bar per series.
pub fn bar_chart(
    title: &str,
    labels: &[String],
    series: &[(String, Vec<f64>)],
    y_label: &str,
) -> String {
    let y_hi = series.iter().flat_map(|(_, v)| v.iter().copied()).fold(0.0f64, f64::max).max(1e-9);
    let py = |y: f64| H - MARGIN_B - y / y_hi * (H - MARGIN_T - MARGIN_B);
    let n_groups = labels.len().max(1);
    let group_w = (W - MARGIN_L - MARGIN_R) / n_groups as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;

    let mut svg = svg_header(title);
    axes(&mut svg, "", y_label);
    for t in nice_ticks(0.0, y_hi, 6) {
        let y = py(t);
        let _ = writeln!(
            svg,
            "<line x1='{0:.1}' y1='{y:.1}' x2='{1:.1}' y2='{y:.1}' stroke='#eee'/>\
             <text x='{2:.1}' y='{3:.1}' text-anchor='end' font-size='11'>{4}</text>",
            MARGIN_L,
            W - MARGIN_R,
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for (g, label) in labels.iter().enumerate() {
        let gx = MARGIN_L + g as f64 * group_w;
        for (si, (_, values)) in series.iter().enumerate() {
            let v = values.get(g).copied().unwrap_or(0.0);
            let x = gx + group_w * 0.1 + si as f64 * bar_w;
            let y = py(v);
            let _ = writeln!(
                svg,
                "<rect x='{x:.1}' y='{y:.1}' width='{:.1}' height='{:.1}' fill='{}'/>",
                bar_w * 0.92,
                (H - MARGIN_B - y).max(0.0),
                COLORS[si % COLORS.len()]
            );
        }
        let _ = writeln!(
            svg,
            "<text x='{:.1}' y='{:.1}' text-anchor='middle' font-size='10'>{}</text>",
            gx + group_w / 2.0,
            H - MARGIN_B + 16.0,
            esc(label)
        );
    }
    for (si, (name, _)) in series.iter().enumerate() {
        let ly = MARGIN_T + 16.0 * si as f64;
        let _ = writeln!(
            svg,
            "<rect x='{0:.1}' y='{1:.1}' width='12' height='8' fill='{2}'/>\
             <text x='{3:.1}' y='{4:.1}' font-size='11'>{5}</text>",
            W - 170.0,
            ly,
            COLORS[si % COLORS.len()],
            W - 154.0,
            ly + 8.0,
            esc(name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns='http://www.w3.org/2000/svg' width='{W}' height='{H}' \
         viewBox='0 0 {W} {H}' font-family='sans-serif'>\n\
         <rect width='{W}' height='{H}' fill='white'/>\n\
         <text x='{:.1}' y='18' text-anchor='middle' font-size='14' font-weight='bold'>{}</text>\n",
        W / 2.0,
        esc(title)
    )
}

fn axes(svg: &mut String, x_label: &str, y_label: &str) {
    let _ = writeln!(
        svg,
        "<line x1='{MARGIN_L}' y1='{0}' x2='{1}' y2='{0}' stroke='#333'/>\
         <line x1='{MARGIN_L}' y1='{MARGIN_T}' x2='{MARGIN_L}' y2='{0}' stroke='#333'/>",
        H - MARGIN_B,
        W - MARGIN_R
    );
    if !x_label.is_empty() {
        let _ = writeln!(
            svg,
            "<text x='{:.1}' y='{:.1}' text-anchor='middle' font-size='12'>{}</text>",
            (W + MARGIN_L) / 2.0,
            H - 10.0,
            esc(x_label)
        );
    }
    if !y_label.is_empty() {
        let _ = writeln!(
            svg,
            "<text x='14' y='{:.1}' text-anchor='middle' font-size='12' \
             transform='rotate(-90 14 {:.1})'>{}</text>",
            H / 2.0,
            H / 2.0,
            esc(y_label)
        );
    }
}

/// Writes an SVG file under the experiments directory.
pub fn write_svg(
    out_dir: &std::path::Path,
    name: &str,
    svg: &str,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{name}.svg"));
    std::fs::write(&path, svg)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_series_and_labels() {
        let svg = line_chart(
            "Test <chart>",
            "sample %",
            "insights %",
            &[
                Series { name: "unbalanced".into(), points: vec![(5.0, 10.0), (20.0, 35.0)] },
                Series { name: "random".into(), points: vec![(5.0, 2.0), (20.0, 25.0)] },
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("unbalanced"));
        assert!(svg.contains("Test &lt;chart&gt;"));
        assert!(svg.matches("<path").count() == 2);
        assert!(svg.matches("<circle").count() == 4);
    }

    #[test]
    fn bar_chart_draws_all_bars() {
        let svg = bar_chart(
            "Scores",
            &["A".into(), "B".into(), "C".into()],
            &[("crit1".into(), vec![4.0, 5.0, 3.0]), ("crit2".into(), vec![2.0, 1.0, 6.0])],
            "score",
        );
        // 6 data bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 6 + 2 + 1); // +1 background
        assert!(svg.contains("crit2"));
    }

    #[test]
    fn ticks_are_sane() {
        let t = nice_ticks(0.0, 100.0, 6);
        assert!(t.len() >= 4 && t.len() <= 8);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(nice_ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn empty_series_do_not_panic() {
        let svg = line_chart("empty", "x", "y", &[]);
        assert!(svg.contains("</svg>"));
        let svg = bar_chart("empty", &[], &[], "y");
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn write_svg_creates_file() {
        let dir = std::env::temp_dir().join(format!("cn_plot_{}", std::process::id()));
        let p = write_svg(&dir, "t", "<svg></svg>").unwrap();
        assert!(p.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
