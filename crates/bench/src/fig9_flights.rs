//! **Figure 9** — sampling strategies on the larger Flights-shaped
//! dataset: runtime, phase breakdown, and % of insights detected — which
//! can exceed 100% because aggressive sampling produces *spurious*
//! insights (Section 6.3.4).

use crate::common::{f2, ExperimentCtx, Opts};
use cn_core::datagen::{flights_like, Scale};
use cn_core::prelude::*;
use std::time::Instant;

/// Runs the Figure 9 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 9: sampling on the Flights-shaped dataset ==");
    let scale = if opts.quick {
        Scale { rows: 0.002, domains: 0.03 }
    } else {
        Scale { rows: 0.01, domains: 0.1 }
    };
    let table = flights_like(scale, opts.seed);
    println!("  dataset: {} rows", table.n_rows());

    // Reference insights on the full data (the WSC-approx run the paper
    // reports took 14h on the real 5.8M rows; our scaled run is the
    // denominator for the % detected).
    let base_cfg = crate::fig6_sample_size::pipeline_config(opts, SamplingStrategy::None);
    let t0 = Instant::now();
    let reference = cn_core::pipeline::run(&table, &base_cfg).expect("pipeline run");
    let full_secs = t0.elapsed().as_secs_f64();
    let reference_keys = reference.insight_keys();
    println!("  reference: {} insights in {:.1}s", reference_keys.len(), full_secs);

    let mut ctx = ExperimentCtx::new("fig9_flights", opts);
    ctx.header(&[
        "strategy",
        "sample_pct",
        "runtime_s",
        "stat_tests_s",
        "hypothesis_eval_s",
        "tap_s",
        "insights_detected_pct",
        "spurious_pct",
    ]);
    let fractions: &[f64] = if opts.quick { &[0.1, 0.3] } else { &[0.05, 0.1, 0.2, 0.3] };
    let mut curves: Vec<crate::plot::Series> = vec![
        crate::plot::Series { name: "unbalanced".into(), points: vec![] },
        crate::plot::Series { name: "random".into(), points: vec![] },
    ];
    for &fraction in fractions {
        for (si, (name, strategy)) in [
            ("unbalanced", SamplingStrategy::Unbalanced { fraction }),
            ("random", SamplingStrategy::Random { fraction }),
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = crate::fig6_sample_size::pipeline_config(opts, strategy);
            let t0 = Instant::now();
            let r = cn_core::pipeline::run(&table, &cfg).expect("pipeline run");
            let secs = t0.elapsed().as_secs_f64();
            let found = r.insight_keys();
            // The Figure 9 ratio counts everything found on the sample,
            // spurious included, hence values above 100%.
            let pct = 100.0 * found.len() as f64 / reference_keys.len().max(1) as f64;
            let spurious = found.difference(&reference_keys).count();
            let spurious_pct = 100.0 * spurious as f64 / found.len().max(1) as f64;
            curves[si].points.push((fraction * 100.0, pct));
            ctx.row(&[
                name.to_string(),
                f2(fraction * 100.0),
                f2(secs),
                f2(r.timings.stat_tests.as_secs_f64()),
                f2(r.timings.hypothesis_eval.as_secs_f64()),
                f2(r.timings.tap.as_secs_f64()),
                f2(pct),
                f2(spurious_pct),
            ]);
        }
    }
    crate::plot::write_svg(
        &opts.out_dir,
        "fig9_flights",
        &crate::plot::line_chart(
            "Figure 9: insights detected vs sample size (Flights-shaped)",
            "sample %",
            "insights detected % (can exceed 100: spurious)",
            &curves,
        ),
    )?;
    ctx.note(format!(
        "Full (no-sampling) WSC-approx run: {:.1}s. Detection above 100% reflects \
         spurious insights from aggressive sampling; the spurious share shrinks as \
         the sample grows, and unbalanced sampling is more robust to it — the \
         paper's Section 6.3.4 findings.",
        full_secs
    ));
    ctx.finish()
}
