//! **Figure 10** — the (simulated) user evaluation: six generator
//! variants, nine raters, four criteria, plus the paired t-tests of
//! Section 6.5.

use crate::common::{f2, ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, Scale};
use cn_core::prelude::*;
use cn_core::study::{run_user_study, Criterion, StudyConfig};

/// Runs the Figure 10 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 10: simulated human evaluation ==");
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);

    let mut base = crate::fig6_sample_size::pipeline_config(opts, SamplingStrategy::None);
    // The paper's notebooks had 10 comparison queries each, with ε_d tuned
    // so queries sit close together.
    base.budgets = Budgets { epsilon_t: 10.0, epsilon_d: 45.0 };
    let config = StudyConfig {
        generators: GeneratorKind::TABLE7.to_vec(),
        n_raters: 9,
        base,
        // The paper sampled 10% of 114,527 rows ≈ 11k tested rows; our
        // bench-scale dataset is ~11k rows *in total*, so matching the
        // paper's effective statistical power means a ~50% fraction here.
        sample_fraction: 0.5,
        tap_timeout: opts.timeout,
        seed: opts.seed,
    };
    let result = run_user_study(&table, &config);

    // Export the rated notebooks like the paper's Jupyter deployment.
    let nb_dir = opts.out_dir.join("notebooks");
    for (g, kind) in result.generators.iter().enumerate() {
        let stem = kind.name().to_lowercase().replace(' ', "_");
        cn_core::notebook::write_all(&result.runs[g].notebook, &nb_dir, &stem)?;
    }
    println!("  rated notebooks exported to {}", nb_dir.display());

    let mut ctx = ExperimentCtx::new("fig10_user_study", opts);
    ctx.header(&[
        "generator",
        "informativity",
        "comprehensibility",
        "expertise",
        "human_equivalence",
        "notebook_len",
    ]);
    for (g, kind) in result.generators.iter().enumerate() {
        ctx.row(&[
            kind.name().to_string(),
            f2(result.mean_score(g, Criterion::Informativity)),
            f2(result.mean_score(g, Criterion::Comprehensibility)),
            f2(result.mean_score(g, Criterion::Expertise)),
            f2(result.mean_score(g, Criterion::HumanEquivalence)),
            result.runs[g].notebook.len().to_string(),
        ]);
    }
    for c in Criterion::ALL {
        let w = result.winner(c);
        ctx.note(format!("{}: best = {}", c.name(), result.generators[w].name()));
    }
    let labels: Vec<String> = result.generators.iter().map(|g| g.name().to_string()).collect();
    let series: Vec<(String, Vec<f64>)> = Criterion::ALL
        .iter()
        .map(|&c| {
            (
                c.name().to_string(),
                (0..result.generators.len()).map(|g| result.mean_score(g, c)).collect(),
            )
        })
        .collect();
    crate::plot::write_svg(
        &opts.out_dir,
        "fig10_user_study",
        &crate::plot::bar_chart(
            "Figure 10: simulated human evaluation",
            &labels,
            &series,
            "mean score (1-7)",
        ),
    )?;

    // Paired t-tests between every generator pair, per criterion.
    let mut ttests = ExperimentCtx::new("fig10_t_tests", opts);
    ttests.header(&[
        "criterion",
        "generator_a",
        "generator_b",
        "t",
        "p_value",
        "significant_at_5pct",
    ]);
    for c in Criterion::ALL {
        for a in 0..result.generators.len() {
            for b in (a + 1)..result.generators.len() {
                if let Some(t) = result.compare(a, b, c) {
                    ttests.rows_silent(&[
                        c.name().to_string(),
                        result.generators[a].name().to_string(),
                        result.generators[b].name().to_string(),
                        format!("{:.3}", t.t),
                        format!("{:.4}", t.p_value),
                        (t.p_value <= 0.05).to_string(),
                    ]);
                }
            }
        }
    }
    ttests.note(
        "Simulated raters (see DESIGN.md §1): scores derive from measurable \
         notebook properties through noisy per-rater weights; the t-test \
         machinery reproduces the Section 6.5 analysis.",
    );
    ctx.finish()?;
    ttests.finish()
}
