//! **Figure 7** — runtime by budget `ε_t` for the five Table 3
//! implementations, plus the per-phase breakdown (Section 6.3.2).

use crate::common::{f2, ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, Scale};
use cn_core::prelude::*;

/// Runs the Figure 7 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 7: runtime by budget and phase breakdown ==");
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);
    let budgets: &[f64] = if opts.quick { &[5.0, 10.0] } else { &[5.0, 10.0, 20.0, 40.0] };
    let sample_fraction = 0.2;

    let mut top = ExperimentCtx::new("fig7_runtime_by_budget", opts);
    top.header(&["implementation", "epsilon_t", "runtime_s", "n_queries", "tap_timed_out"]);
    let mut breakdown = ExperimentCtx::new("fig7_breakdown", opts);
    breakdown.header(&[
        "implementation",
        "sampling_s",
        "stat_tests_s",
        "set_cover_s",
        "hypothesis_eval_s",
        "interest_s",
        "tap_s",
    ]);

    let mut curves: Vec<crate::plot::Series> = Vec::new();
    for kind in GeneratorKind::TABLE3 {
        let mut acc = cn_core::pipeline::PhaseTimings::default();
        let mut n_runs = 0u32;
        let mut curve = crate::plot::Series { name: kind.name().to_string(), points: vec![] };
        for &epsilon_t in budgets {
            let mut base = crate::fig6_sample_size::pipeline_config(opts, SamplingStrategy::None);
            base.budgets.epsilon_t = epsilon_t;
            let cfg = kind.configure(base, sample_fraction, opts.timeout);
            let r = cn_core::pipeline::run(&table, &cfg).expect("pipeline run");
            top.row(&[
                kind.name().to_string(),
                f2(epsilon_t),
                f2(r.timings.total().as_secs_f64()),
                r.queries.len().to_string(),
                r.tap_timed_out.to_string(),
            ]);
            curve.points.push((epsilon_t, r.timings.total().as_secs_f64()));
            acc.sampling += r.timings.sampling;
            acc.stat_tests += r.timings.stat_tests;
            acc.set_cover += r.timings.set_cover;
            acc.hypothesis_eval += r.timings.hypothesis_eval;
            acc.interest += r.timings.interest;
            acc.tap += r.timings.tap;
            n_runs += 1;
        }
        let avg = |d: std::time::Duration| f2(d.as_secs_f64() / n_runs as f64);
        breakdown.row(&[
            kind.name().to_string(),
            avg(acc.sampling),
            avg(acc.stat_tests),
            avg(acc.set_cover),
            avg(acc.hypothesis_eval),
            avg(acc.interest),
            avg(acc.tap),
        ]);
        curves.push(curve);
    }
    crate::plot::write_svg(
        &opts.out_dir,
        "fig7_runtime_by_budget",
        &crate::plot::line_chart("Figure 7: runtime by budget", "epsilon_t", "seconds", &curves),
    )?;
    top.note(
        "Runtime is flat in epsilon_t for the approximate variants (Section 6.3.2); \
         sampling variants are fastest; statistical tests dominate the breakdown; \
         Naive-exact's TAP phase is bounded by its timeout.",
    );
    top.finish()?;
    breakdown.finish()
}
