//! **Figure 8** — impact of multi-threading on the generation of `Q`:
//! permutation testing and in-memory aggregate checking, swept over
//! worker-thread counts (Section 6.3.3).

use crate::common::{f2, ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, Scale};
use cn_core::prelude::*;

/// Runs the Figure 8 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 8: multi-threading the generation of Q ==");
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut t = 16;
    while t <= cores * 2 {
        threads.push(t);
        t *= 2;
    }
    if opts.quick {
        threads.truncate(3);
    }

    let mut ctx = ExperimentCtx::new("fig8_threads", opts);
    ctx.header(&["threads", "stat_tests_s", "hypothesis_eval_s", "generation_s", "speedup"]);
    let mut baseline = None;
    let mut curve = crate::plot::Series { name: "speedup".into(), points: vec![] };
    for &n in &threads {
        let mut cfg = crate::fig6_sample_size::pipeline_config(opts, SamplingStrategy::None);
        cfg.n_threads = n;
        let r = cn_core::pipeline::run(&table, &cfg).expect("pipeline run");
        let gen = r.timings.generation().as_secs_f64();
        let speedup = baseline.get_or_insert(gen).to_owned() / gen;
        ctx.row(&[
            n.to_string(),
            f2(r.timings.stat_tests.as_secs_f64()),
            f2(r.timings.hypothesis_eval.as_secs_f64()),
            f2(gen),
            f2(speedup),
        ]);
        curve.points.push((n as f64, speedup));
    }
    crate::plot::write_svg(
        &opts.out_dir,
        "fig8_threads",
        &crate::plot::line_chart(
            "Figure 8: generation speedup vs worker threads",
            "threads",
            "speedup vs 1 thread",
            &[curve],
        ),
    )?;
    ctx.note(format!(
        "Host has {cores} logical cores; speedup is near-linear until the core \
         count and flattens after, matching the paper's observation on its 24-core \
         Xeon."
    ));
    ctx.finish()
}
