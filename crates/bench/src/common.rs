//! Shared experiment plumbing: options, output files, small table writer.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Shrinks instance counts / sweeps for a fast smoke run.
    pub quick: bool,
    /// Wall-clock timeout for the exact TAP solver.
    pub timeout: Duration,
    /// Output directory (default `target/experiments`).
    pub out_dir: PathBuf,
    /// Worker threads for pipeline phases.
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            quick: false,
            timeout: Duration::from_secs(60),
            out_dir: PathBuf::from("target/experiments"),
            threads: default_threads(),
            seed: 42,
        }
    }
}

/// Half the logical cores, at least 2 — leaves headroom for the harness.
pub fn default_threads() -> usize {
    (std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4) / 2).max(2)
}

/// An in-memory experiment report: a header row plus data rows, written as
/// CSV and a Markdown table.
pub struct ExperimentCtx {
    name: String,
    opts: Opts,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl ExperimentCtx {
    /// Starts an experiment named like its output files.
    pub fn new(name: &str, opts: &Opts) -> Self {
        ExperimentCtx {
            name: name.to_string(),
            opts: opts.clone(),
            header: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column names.
    pub fn header(&mut self, cols: &[&str]) {
        self.header = cols.iter().map(|s| s.to_string()).collect();
    }

    /// Appends one data row (and echoes it to stdout).
    pub fn row(&mut self, cells: &[String]) {
        println!("  {}", cells.join(" | "));
        self.rows.push(cells.to_vec());
    }

    /// Appends one data row without echoing (for large grids).
    pub fn rows_silent(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Appends a free-form note to the Markdown output.
    pub fn note(&mut self, text: impl Into<String>) {
        let text = text.into();
        println!("  note: {text}");
        self.notes.push(text);
    }

    /// Writes `<name>.csv` and `<name>.md` under the output directory.
    pub fn finish(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.opts.out_dir)?;
        let mut csv = String::new();
        writeln!(csv, "{}", self.header.join(",")).unwrap();
        for row in &self.rows {
            writeln!(csv, "{}", row.join(",")).unwrap();
        }
        std::fs::write(self.opts.out_dir.join(format!("{}.csv", self.name)), csv)?;

        let mut md = format!("# {}\n\n", self.name);
        writeln!(md, "| {} |", self.header.join(" | ")).unwrap();
        writeln!(md, "|{}|", vec!["---"; self.header.len()].join("|")).unwrap();
        for row in &self.rows {
            writeln!(md, "| {} |", row.join(" | ")).unwrap();
        }
        if !self.notes.is_empty() {
            md.push('\n');
            for n in &self.notes {
                writeln!(md, "- {n}").unwrap();
            }
        }
        std::fs::write(self.opts.out_dir.join(format!("{}.md", self.name)), md)?;
        Ok(())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a `mean ± std` cell.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2} ±{std:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_writes_csv_and_markdown() {
        let dir = std::env::temp_dir().join(format!("cn_bench_test_{}", std::process::id()));
        let opts = Opts { out_dir: dir.clone(), ..Default::default() };
        let mut ctx = ExperimentCtx::new("unit_test_exp", &opts);
        ctx.header(&["x", "y"]);
        ctx.rows_silent(&["1".into(), "2".into()]);
        ctx.rows_silent(&["3".into(), "4".into()]);
        ctx.note("a note");
        ctx.finish().unwrap();
        let csv = std::fs::read_to_string(dir.join("unit_test_exp.csv")).unwrap();
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
        let md = std::fs::read_to_string(dir.join("unit_test_exp.md")).unwrap();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("| 3 | 4 |"));
        assert!(md.contains("- a note"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pm(1.5, 0.25), "1.50 ±0.25");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 2);
    }
}
