//! **Figure 4** — the conciseness function surface: a (θ, γ) grid of
//! `exp(−(γ − θα)² / θ^δ)` for plotting.

use crate::common::{ExperimentCtx, Opts};
use cn_core::interest::{conciseness, ConcisenessParams};

/// Runs the Figure 4 reproduction.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 4: conciseness surface ==");
    let mut ctx = ExperimentCtx::new("fig4_conciseness", opts);
    ctx.header(&["theta", "gamma", "conciseness"]);
    let params = ConcisenessParams::default();
    let thetas = [10usize, 30, 100, 300, 1000, 3000, 10000];
    for &theta in &thetas {
        let steps = 24usize;
        for s in 0..=steps {
            let gamma = ((theta as f64) * (s as f64) / steps as f64).round().max(1.0) as usize;
            let c = conciseness(theta, gamma.min(theta), &params);
            ctx.rows_silent(&[theta.to_string(), gamma.to_string(), format!("{c:.5}")]);
        }
    }
    ctx.note(format!(
        "alpha = {}, delta = {}: the ridge of maximal conciseness follows \
         gamma = alpha*theta; the zone gamma > theta is undefined (0).",
        params.alpha, params.delta
    ));
    // Echo the ridge for a quick look.
    for &theta in &thetas {
        let best = (1..=theta)
            .map(|g| (g, conciseness(theta, g, &params)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!("  theta {theta:>6}: peak at gamma = {} (c = {:.3})", best.0, best.1);
    }
    // SVG: one curve per theta over relative gamma.
    let curves: Vec<crate::plot::Series> = [100usize, 1000, 10000]
        .iter()
        .map(|&theta| crate::plot::Series {
            name: format!("theta = {theta}"),
            points: (0..=60)
                .map(|s| {
                    let gamma = ((theta as f64) * s as f64 / 600.0).round().max(1.0) as usize;
                    (
                        100.0 * gamma as f64 / theta as f64,
                        conciseness(theta, gamma.min(theta), &params),
                    )
                })
                .collect(),
        })
        .collect();
    crate::plot::write_svg(
        &opts.out_dir,
        "fig4_conciseness",
        &crate::plot::line_chart(
            "Figure 4: conciseness vs group ratio",
            "gamma / theta (%)",
            "conciseness",
            &curves,
        ),
    )?;
    ctx.finish()
}
