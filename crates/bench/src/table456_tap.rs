//! **Tables 4, 5, 6** — exact TAP resolution time, approximation quality,
//! and recall, over artificial instances (Sections 6.2 and 6.4).
//!
//! Protocol: per instance size, `n_instances` seeded instances with
//! uniform interest, cost ~ U(0.5, 1.5), and Euclidean distances in the
//! unit square; `ε_t = 25`; `ε_d` tuned so that solutions hold "queries
//! very close to each other" while staying satisfiable.

use crate::common::{f2, pm, ExperimentCtx, Opts};
use cn_core::tap::baseline::solve_baseline;
use cn_core::tap::eval::{deviation_percent, mean_std, recall};
use cn_core::tap::{
    generate_instance, solve_exact, solve_heuristic, Budgets, ExactConfig, InstanceConfig,
};

/// The shared protocol parameters.
pub struct Protocol {
    /// Instance sizes (paper: 100–700).
    pub sizes: Vec<usize>,
    /// Instances per size (paper: 30).
    pub n_instances: usize,
    /// Budgets (paper: ε_t = 25).
    pub budgets: Budgets,
}

impl Protocol {
    /// Builds the protocol from the options (quick mode shrinks it).
    pub fn from_opts(opts: &Opts) -> Protocol {
        // Non-metric uniform-distance instances (DESIGN.md §5.7); ε_t
        // scaled to 12 for the branch-and-bound substitution (§5.8), ε_d
        // tuned so solutions hold "queries very close to each other" while
        // staying satisfiable.
        if opts.quick {
            Protocol {
                sizes: vec![50, 100, 150],
                n_instances: 5,
                budgets: Budgets { epsilon_t: 12.0, epsilon_d: 2.0 },
            }
        } else {
            Protocol {
                sizes: vec![100, 200, 300, 400, 500, 600, 700],
                n_instances: 30,
                budgets: Budgets { epsilon_t: 12.0, epsilon_d: 2.0 },
            }
        }
    }
}

struct SizeOutcome {
    times: Vec<f64>,
    timeouts: usize,
    deviations: Vec<f64>,
    recalls_heur: Vec<f64>,
    recalls_base: Vec<f64>,
}

fn run_size(n: usize, protocol: &Protocol, opts: &Opts) -> SizeOutcome {
    let mut out = SizeOutcome {
        times: Vec::new(),
        timeouts: 0,
        deviations: Vec::new(),
        recalls_heur: Vec::new(),
        recalls_base: Vec::new(),
    };
    let cfg = ExactConfig { timeout: opts.timeout, assume_metric: false, ..Default::default() };
    for i in 0..protocol.n_instances {
        // Early stop: if the first 5 instances all timed out, the size is
        // hopeless (the paper similarly dropped its 700-query size).
        if out.timeouts == i && i >= 5 {
            out.timeouts = protocol.n_instances;
            break;
        }
        let seed = opts.seed.wrapping_mul(1000).wrapping_add((n * 31 + i) as u64);
        let instance = generate_instance(&InstanceConfig::uniform_iid(n, seed));
        let exact = solve_exact(&instance, &protocol.budgets, &cfg);
        if exact.timed_out {
            out.timeouts += 1;
            continue; // like the paper, timed-out instances leave the averages
        }
        out.times.push(exact.elapsed.as_secs_f64());
        let heur = solve_heuristic(&instance, &protocol.budgets);
        let base = solve_baseline(&instance, &protocol.budgets);
        out.deviations.push(deviation_percent(&exact.solution, &heur));
        out.recalls_heur.push(recall(&exact.solution, &heur));
        out.recalls_base.push(recall(&exact.solution, &base));
    }
    out
}

/// Runs Tables 4, 5 and 6 in one pass (they share the exact solutions).
pub fn run(opts: &Opts) -> std::io::Result<()> {
    let protocol = Protocol::from_opts(opts);
    println!(
        "== Tables 4-6: TAP exact resolution (timeout {:?}, {} instances/size) ==",
        opts.timeout, protocol.n_instances
    );

    let mut t4 = ExperimentCtx::new("table4_exact_times", opts);
    t4.header(&["n_queries", "avg_s", "min_s", "max_s", "stdev_s", "timeouts_pct"]);
    let mut t5 = ExperimentCtx::new("table5_deviation", opts);
    t5.header(&["n_queries", "deviation_pct"]);
    let mut t6 = ExperimentCtx::new("table6_recall", opts);
    t6.header(&["n_queries", "recall_algo3", "recall_baseline"]);

    let mut time_curve = crate::plot::Series { name: "avg solve time".into(), points: vec![] };
    for &n in &protocol.sizes {
        let o = run_size(n, &protocol, opts);
        let pct_timeout = 100.0 * o.timeouts as f64 / protocol.n_instances as f64;
        if o.times.is_empty() {
            t4.row(&[
                n.to_string(),
                "-".into(),
                format!(">{:.0}", opts.timeout.as_secs_f64()),
                format!(">{:.0}", opts.timeout.as_secs_f64()),
                "-".into(),
                f2(pct_timeout),
            ]);
            // Like the paper, sizes with 100% timeouts drop from Tables 5-6
            // and end the sweep (larger sizes only get worse).
            break;
        }
        let (avg, std) = mean_std(&o.times);
        let min = o.times.iter().cloned().fold(f64::MAX, f64::min);
        let max = o.times.iter().cloned().fold(f64::MIN, f64::max);
        time_curve.points.push((n as f64, avg));
        t4.row(&[n.to_string(), f2(avg), f2(min), f2(max), f2(std), f2(pct_timeout)]);
        let (dm, ds) = mean_std(&o.deviations);
        t5.row(&[n.to_string(), pm(dm, ds)]);
        let (hm, hs) = mean_std(&o.recalls_heur);
        let (bm, bs) = mean_std(&o.recalls_base);
        t6.row(&[n.to_string(), pm(hm, hs), pm(bm, bs)]);
    }
    t4.note(format!(
        "epsilon_t = {}, epsilon_d = {}; branch-and-bound stands in for CPLEX \
         (DESIGN.md). Timed-out instances leave the averages, as in the paper.",
        protocol.budgets.epsilon_t, protocol.budgets.epsilon_d
    ));
    crate::plot::write_svg(
        &opts.out_dir,
        "table4_exact_times",
        &crate::plot::line_chart(
            "Table 4: exact TAP solve time by instance size",
            "queries",
            "avg seconds (solved instances)",
            &[time_curve],
        ),
    )?;
    t4.finish()?;
    t5.finish()?;
    t6.finish()
}
