//! **Figure 5** — distribution of comparison-query run times: all
//! comparison queries cost roughly the same, which justifies the uniform
//! cost model (Section 4.2).

use crate::common::{ExperimentCtx, Opts};
use cn_core::datagen::{enedis_like, Scale};
use cn_core::engine::comparison::execute;
use cn_core::engine::{AggFn, ComparisonSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Runs the Figure 5 reproduction: times a random sample of comparison
/// queries and reports a histogram.
pub fn run(opts: &Opts) -> std::io::Result<()> {
    println!("== Figure 5: comparison-query run-time distribution ==");
    let scale = if opts.quick { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);
    let n_queries = if opts.quick { 100 } else { 400 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let attrs: Vec<_> = table.schema().attribute_ids().collect();
    let measures: Vec<_> = table.schema().measure_ids().collect();

    let mut times_ms: Vec<f64> = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        // A uniformly random valid comparison query.
        let a = attrs[rng.random_range(0..attrs.len())];
        let mut b = attrs[rng.random_range(0..attrs.len())];
        while b == a {
            b = attrs[rng.random_range(0..attrs.len())];
        }
        let dom = table.dict(b).len() as u32;
        let val = rng.random_range(0..dom);
        let mut val2 = rng.random_range(0..dom);
        while val2 == val {
            val2 = rng.random_range(0..dom);
        }
        let spec = ComparisonSpec {
            group_by: a,
            select_on: b,
            val,
            val2,
            measure: measures[rng.random_range(0..measures.len())],
            agg: AggFn::DEFAULT[rng.random_range(0..AggFn::DEFAULT.len())],
        };
        let t0 = Instant::now();
        let result = execute(&table, &spec);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(result);
        times_ms.push(dt);
    }

    times_ms.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let pct = |p: f64| times_ms[((times_ms.len() - 1) as f64 * p) as usize];
    let mean = times_ms.iter().sum::<f64>() / times_ms.len() as f64;

    let mut ctx = ExperimentCtx::new("fig5_query_times", opts);
    ctx.header(&["bucket_ms", "count"]);
    // Histogram over 12 buckets.
    let max = *times_ms.last().unwrap();
    let width = (max / 12.0).max(1e-6);
    let mut counts = [0usize; 12];
    for &t in &times_ms {
        let idx = ((t / width) as usize).min(11);
        counts[idx] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        ctx.row(&[format!("{:.3}", width * (i as f64 + 0.5)), c.to_string()]);
    }
    let labels: Vec<String> = (0..12).map(|i| format!("{:.2}", width * (i as f64 + 0.5))).collect();
    crate::plot::write_svg(
        &opts.out_dir,
        "fig5_query_times",
        &crate::plot::bar_chart(
            "Figure 5: comparison-query run-time distribution",
            &labels,
            &[("queries".to_string(), counts.iter().map(|&c| c as f64).collect())],
            "count",
        ),
    )?;
    ctx.note(format!(
        "n = {} random comparison queries on {} rows: mean {:.3} ms, median {:.3} ms, \
         p95 {:.3} ms, max {:.3} ms — tightly concentrated, as in the paper's Figure 5, \
         supporting the uniform cost model.",
        times_ms.len(),
        table.n_rows(),
        mean,
        pct(0.5),
        pct(0.95),
        max
    ));
    ctx.finish()
}
