//! # cn-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (Section 6). Each experiment writes a CSV and a Markdown
//! summary under `target/experiments/` and prints the headline rows.
//!
//! Run via:
//!
//! ```bash
//! cargo run -p cn-bench --release --bin repro -- all --quick
//! cargo run -p cn-bench --release --bin repro -- table4 --timeout 60
//! ```

pub mod ablations;
pub mod common;
pub mod fig10_user_study;
pub mod fig4_conciseness;
pub mod fig5_query_times;
pub mod fig6_sample_size;
pub mod fig7_budget;
pub mod fig8_threads;
pub mod fig9_flights;
pub mod plot;
pub mod smoke;
pub mod table2_datasets;
pub mod table456_tap;

pub use common::{ExperimentCtx, Opts};
