//! `bench_suffix` — the warm query-evaluation suffix under the three
//! group-by kernels.
//!
//! Every run replays Phases 0–2 from a precomputed store artifact, so
//! the measured work is exactly the Phase 3 suffix the server executes
//! on a warm request: group-by materialization + hypothesis-query
//! evaluation. Three configurations over the same `(table, artifact)`:
//!
//! 1. `wsc` — the seed's Algorithm 2 set-cover kernel (sparse cubes);
//! 2. `shared` — the COMPARE-style shared-scan dense kernel, cold cache;
//! 3. `cached` — the shared-scan kernel against a pre-warmed
//!    [`GroupByCache`], i.e. a repeat request.
//!
//! Asserts the three notebooks are byte-identical and writes
//! `BENCH_suffix.json` with the `hypothesis_eval` phase times, the
//! kernel speedup, and the cache hit rate.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin bench_suffix -- --out BENCH_suffix.json
//! ```

use cn_core::datagen::{enedis_like, Scale};
use cn_core::notebook::to_markdown;
use cn_core::obs::{CancelToken, Metric, Registry};
use cn_core::pipeline::store::{build_store_artifact, run_from_store_cached};
use cn_core::pipeline::{run_from_store_observed, GeneratorConfig, GroupByCache, QueryGeneration};
use serde_json::json;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: bench_suffix [--out PATH] [--perms N] [--threads N] [--seed N] [--runs N] [--small]\n\
         defaults: --out BENCH_suffix.json --perms 200 --threads 1 --seed 21 --runs 3\n\
         --small: TEST-scale table, no speedup bar (CI smoke preset)"
    );
    std::process::exit(2)
}

struct Opts {
    out: PathBuf,
    perms: usize,
    threads: usize,
    seed: u64,
    runs: usize,
    small: bool,
}

fn parse() -> Opts {
    let mut opts = Opts {
        out: PathBuf::from("BENCH_suffix.json"),
        perms: 200,
        threads: 1,
        seed: 21,
        runs: 3,
        small: false,
    };
    let rest: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |rest: &[String], i: &mut usize| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => opts.out = PathBuf::from(value(&rest, &mut i)),
            "--perms" => opts.perms = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--runs" => {
                opts.runs = value(&rest, &mut i).parse().unwrap_or_else(|_| usage());
                opts.runs = opts.runs.max(1);
            }
            "--small" => opts.small = true,
            _ => usage(),
        }
        i += 1;
    }
    opts
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-N `hypothesis_eval` phase time for one configuration; also
/// returns the last run's notebook markdown for the identity check.
fn measure<F>(runs: usize, mut one: F) -> (Duration, String)
where
    F: FnMut() -> (Registry, String),
{
    let mut best = Duration::MAX;
    let mut md = String::new();
    for _ in 0..runs {
        let (obs, rendered) = one();
        let hyp = obs.report().phase_duration("hypothesis_eval");
        if hyp < best {
            best = hyp;
        }
        md = rendered;
    }
    (best, md)
}

fn main() {
    let opts = parse();
    let scale = if opts.small { Scale::TEST } else { Scale::BENCH };
    let table = enedis_like(scale, opts.seed);

    let mut wsc_config =
        GeneratorConfig { n_threads: opts.threads, seed: opts.seed, ..GeneratorConfig::default() };
    wsc_config.generation_config.test.n_permutations = opts.perms;
    wsc_config.generation_config.test.seed = opts.seed;
    wsc_config.generation = QueryGeneration::Wsc { memory_budget_bytes: None };
    let mut shared_config = wsc_config.clone();
    shared_config.generation = QueryGeneration::SharedScan;

    // One artifact serves every configuration: the prefix fingerprint
    // deliberately excludes the generation kernel.
    let artifact = build_store_artifact(&table, &wsc_config, "bench").expect("build artifact");

    let (wsc_hyp, wsc_md) = measure(opts.runs, || {
        let obs = Registry::new();
        let r = run_from_store_observed(&table, &artifact, &wsc_config, &obs).expect("wsc run");
        (obs, to_markdown(&r.notebook))
    });

    let (shared_hyp, shared_md) = measure(opts.runs, || {
        let obs = Registry::new();
        let r =
            run_from_store_observed(&table, &artifact, &shared_config, &obs).expect("shared run");
        (obs, to_markdown(&r.notebook))
    });

    // The repeat-request path: warm the cache once, then measure runs
    // that serve every cube from memory.
    let cubes = GroupByCache::default();
    let warmup = Registry::new();
    run_from_store_cached(&table, &artifact, &shared_config, &warmup, CancelToken::never(), &cubes)
        .expect("cache warmup run");
    let mut hits = 0u64;
    let mut misses = 0u64;
    let (cached_hyp, cached_md) = measure(opts.runs, || {
        let obs = Registry::new();
        let r = run_from_store_cached(
            &table,
            &artifact,
            &shared_config,
            &obs,
            CancelToken::never(),
            &cubes,
        )
        .expect("cached run");
        hits = obs.get(Metric::GroupbyCacheHits);
        misses = obs.get(Metric::GroupbyCacheMisses);
        (obs, to_markdown(&r.notebook))
    });

    assert_eq!(wsc_md, shared_md, "shared-scan notebook must be bit-identical to WSC");
    assert_eq!(wsc_md, cached_md, "cached notebook must be bit-identical to WSC");
    if hits == 0 && misses == 0 {
        eprintln!(
            "error: no group-by pairs to evaluate — no insight survived BH correction at \
             --perms {}; raise --perms",
            opts.perms
        );
        std::process::exit(2);
    }
    assert!(hits > 0, "repeat runs must hit the group-by cache");
    assert_eq!(misses, 0, "repeat runs must not rebuild any cube");

    let kernel_speedup = ms(wsc_hyp) / ms(shared_hyp).max(1e-9);
    let cached_speedup = ms(wsc_hyp) / ms(cached_hyp).max(1e-9);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let payload = json!({
        "dataset": format!("enedis_like({})", if opts.small { "TEST" } else { "BENCH" }),
        "n_rows": table.n_rows() as u64,
        "n_permutations": opts.perms as u64,
        "threads": opts.threads as u64,
        "runs": opts.runs as u64,
        "wsc_hypothesis_eval_ms": ms(wsc_hyp),
        "shared_hypothesis_eval_ms": ms(shared_hyp),
        "cached_hypothesis_eval_ms": ms(cached_hyp),
        "kernel_speedup": kernel_speedup,
        "cached_speedup": cached_speedup,
        "groupby_cache_hits": hits,
        "groupby_cache_misses": misses,
        "cache_hit_rate": hit_rate,
        "identical_output": true,
    });
    let rendered = serde_json::to_string_pretty(&payload).expect("render report");
    std::fs::write(&opts.out, rendered).expect("write report");
    eprintln!(
        "hypothesis_eval: wsc {:.1} ms → shared {:.1} ms ({kernel_speedup:.1}x) → cached {:.1} ms \
         ({cached_speedup:.1}x, hit rate {hit_rate:.2})",
        ms(wsc_hyp),
        ms(shared_hyp),
        ms(cached_hyp)
    );
    eprintln!("wrote {}", opts.out.display());
    if !opts.small && kernel_speedup < 3.0 {
        eprintln!("WARNING: shared-scan kernel speedup below the 3x acceptance bar");
        std::process::exit(1);
    }
}
