//! `bench_index` — similarity-index throughput and determinism.
//!
//! Builds a synthetic corpus of notebook documents, measures insert and
//! top-k search throughput at 1/4/8 scoring threads, round-trips the
//! corpus through a CNIDX file, and writes `BENCH_index.json`. The run
//! *asserts* the two properties the index is allowed to be fast because
//! of: every query ranks bit-identically across thread counts, and
//! bit-identically before and after save/load.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin bench_index -- --out BENCH_index.json
//! ```

use cn_core::index::{document, load, save, Document, Index, ScoreKind};
use serde_json::json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: bench_index [--out PATH] [--docs N] [--queries N] [--k N] [--small]\n\
         defaults: --out BENCH_index.json --docs 2000 --queries 200 --k 10\n\
         --small: 200 docs, 50 queries (CI-sized)"
    );
    std::process::exit(2)
}

struct Opts {
    out: PathBuf,
    docs: usize,
    queries: usize,
    k: usize,
}

fn parse() -> Opts {
    let mut opts = Opts { out: PathBuf::from("BENCH_index.json"), docs: 2000, queries: 200, k: 10 };
    let rest: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |rest: &[String], i: &mut usize| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => opts.out = PathBuf::from(value(&rest, &mut i)),
            "--docs" => opts.docs = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => opts.queries = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--k" => opts.k = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--small" => {
                opts.docs = 200;
                opts.queries = 50;
            }
            _ => usage(),
        }
        i += 1;
    }
    opts.docs = opts.docs.max(1);
    opts.queries = opts.queries.max(1);
    opts.k = opts.k.max(1);
    opts
}

/// A synthetic notebook document: overlapping term families shaped like
/// real signatures (a handful of attributes/measures shared across many
/// notebooks), deterministic in `i`.
fn synthetic_doc(i: usize) -> Document {
    let mut terms = Vec::new();
    terms.push((format!("group:attr{}", i % 17), 1.0 + (i % 3) as f64));
    terms.push((format!("select:attr{}", i % 11), 1.0));
    terms.push((format!("measure:m{}", i % 7), 2.0));
    terms.push((format!("agg:{}", if i.is_multiple_of(2) { "avg" } else { "sum" }), 1.0));
    terms.push((format!("val:v{}", i % 29), 1.0));
    terms.push((format!("val:v{}", (i * 13) % 29), 1.0));
    terms.push((format!("pair:v{}|v{}", i % 29, (i * 13) % 29), 1.0));
    terms.push((
        format!("type:{}", if i.is_multiple_of(5) { "variance_greater" } else { "mean_greater" }),
        1.0,
    ));
    terms.push((format!("sig:{}", i % 4), 1.0));
    document(format!("ds{}", i % 5), format!("Synthetic notebook {i}"), 3 + (i % 6) as u64, terms)
}

/// Query q: a partial signature overlapping several documents.
fn synthetic_query(q: usize) -> Vec<(String, f64)> {
    vec![
        (format!("group:attr{}", q % 17), 1.0),
        (format!("measure:m{}", q % 7), 1.0),
        (format!("val:v{}", (q * 3) % 29), 1.0),
    ]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Bit-comparable ranking of every query at `threads`.
fn rankings(index: &Index, queries: usize, k: usize, threads: usize) -> Vec<Vec<(String, u64)>> {
    (0..queries)
        .map(|q| {
            index
                .search(&synthetic_query(q), k, ScoreKind::Cosine, threads)
                .into_iter()
                .map(|h| (h.id, h.score.to_bits()))
                .collect()
        })
        .collect()
}

fn main() {
    let opts = parse();

    let docs: Vec<Document> = (0..opts.docs).map(synthetic_doc).collect();
    let insert_started = Instant::now();
    let mut index = Index::new();
    for d in &docs {
        index.insert(d.clone());
    }
    let insert_time = insert_started.elapsed();
    assert!(index.len() >= 100.min(opts.docs), "corpus too small to say anything");

    // Search throughput per thread count, plus the ranking for the
    // invariance check.
    let mut search_ms = Vec::new();
    let mut per_thread = Vec::new();
    for &threads in &[1usize, 4, 8] {
        let started = Instant::now();
        let ranking = rankings(&index, opts.queries, opts.k, threads);
        let elapsed = started.elapsed();
        search_ms.push(json!({
            "threads": threads as u64,
            "total_ms": ms(elapsed),
            "searches_per_sec": opts.queries as f64 / elapsed.as_secs_f64().max(1e-9),
        }));
        per_thread.push(ranking);
    }
    let identical_across_threads = per_thread.iter().all(|r| *r == per_thread[0]);
    assert!(identical_across_threads, "ranking changed with the thread count");

    // Round-trip through a CNIDX file.
    let dir = std::env::temp_dir().join(format!("cn-bench-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("bench.cnidx");
    let save_started = Instant::now();
    let file_bytes = save(&index, &path).expect("save index");
    let save_time = save_started.elapsed();
    let load_started = Instant::now();
    let reloaded = load(&path).expect("load index");
    let load_time = load_started.elapsed();
    let _ = std::fs::remove_dir_all(&dir);
    let roundtrip_identical = rankings(&reloaded, opts.queries, opts.k, 4) == per_thread[0];
    assert!(roundtrip_identical, "ranking changed across save/load");

    let single_thread_ms = search_ms[0]["total_ms"].as_f64().unwrap_or(0.0);
    let payload = json!({
        "docs": opts.docs as u64,
        "queries": opts.queries as u64,
        "k": opts.k as u64,
        "insert_ms": ms(insert_time),
        "inserts_per_sec": opts.docs as f64 / insert_time.as_secs_f64().max(1e-9),
        "search": search_ms,
        "save_ms": ms(save_time),
        "load_ms": ms(load_time),
        "file_bytes": file_bytes,
        "identical_across_threads": identical_across_threads,
        "roundtrip_identical": roundtrip_identical,
    });
    let rendered = serde_json::to_string_pretty(&payload).expect("render report");
    std::fs::write(&opts.out, rendered).expect("write report");
    eprintln!(
        "{} docs inserted in {:.1} ms; {} searches: {:.1} ms @1t, save {:.1} ms, load {:.1} ms",
        opts.docs,
        ms(insert_time),
        opts.queries,
        single_thread_ms,
        ms(save_time),
        ms(load_time)
    );
    eprintln!("wrote {}", opts.out.display());
}
