//! `bench_store` — cold vs. warm generation over the precomputed-insight
//! store.
//!
//! Runs the full pipeline cold, then warm through a disk round-tripped
//! [`StoreArtifact`], on the same `(table, config)`, and writes
//! `BENCH_store.json` with the latency split. The warm span tree has no
//! `stat_tests` span at all — the artifact replaces Phases 0–2 — which
//! is the whole point: the paper's cost breakdown shows the permutation
//! tests dominate end-to-end time, and they depend only on data the
//! store captures once.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin bench_store -- --out BENCH_store.json
//! ```

use cn_core::datagen::{enedis_like, Scale};
use cn_core::notebook::to_markdown;
use cn_core::obs::Registry;
use cn_core::pipeline::store::{build_store_artifact, run_from_store_observed};
use cn_core::pipeline::{run_observed, GeneratorConfig};
use cn_core::store::Store;
use serde_json::json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: bench_store [--out PATH] [--perms N] [--threads N] [--seed N] [--runs N]\n\
         defaults: --out BENCH_store.json --perms 200 --threads 2 --seed 21 --runs 3"
    );
    std::process::exit(2)
}

struct Opts {
    out: PathBuf,
    perms: usize,
    threads: usize,
    seed: u64,
    runs: usize,
}

fn parse() -> Opts {
    let mut opts =
        Opts { out: PathBuf::from("BENCH_store.json"), perms: 200, threads: 2, seed: 21, runs: 3 };
    let rest: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |rest: &[String], i: &mut usize| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => opts.out = PathBuf::from(value(&rest, &mut i)),
            "--perms" => opts.perms = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&rest, &mut i).parse().unwrap_or_else(|_| usage()),
            "--runs" => {
                opts.runs = value(&rest, &mut i).parse().unwrap_or_else(|_| usage());
                opts.runs = opts.runs.max(1);
            }
            _ => usage(),
        }
        i += 1;
    }
    opts
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let opts = parse();
    let table = enedis_like(Scale::BENCH, opts.seed);
    let mut config =
        GeneratorConfig { n_threads: opts.threads, seed: opts.seed, ..GeneratorConfig::default() };
    config.generation_config.test.n_permutations = opts.perms;
    config.generation_config.test.seed = opts.seed;

    // Build once, round-trip through disk so the warm path includes real
    // deserialization + validation work.
    let build_started = Instant::now();
    let artifact = build_store_artifact(&table, &config, "bench").expect("build artifact");
    let build_time = build_started.elapsed();
    let dir = std::env::temp_dir().join(format!("cn-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open store");
    let artifact_bytes = store.save(&artifact).expect("save artifact");

    // Best-of-N for both paths; the warm run re-loads the artifact every
    // time, as the server does.
    let mut cold_best = Duration::MAX;
    let mut warm_best = Duration::MAX;
    let mut cold_stat_tests = Duration::ZERO;
    let mut warm_store_load = Duration::ZERO;
    let mut warm_has_stat_tests = false;
    let mut cold_md = String::new();
    let mut warm_md = String::new();
    for _ in 0..opts.runs {
        let obs = Registry::new();
        let started = Instant::now();
        let cold = run_observed(&table, &config, &obs).expect("cold run");
        let elapsed = started.elapsed();
        if elapsed < cold_best {
            cold_best = elapsed;
            cold_stat_tests = obs.report().phase_duration("stat_tests");
            cold_md = to_markdown(&cold.notebook);
        }

        let obs = Registry::new();
        let started = Instant::now();
        let loaded = store.load("bench").expect("load artifact");
        let warm = run_from_store_observed(&table, &loaded, &config, &obs).expect("warm run");
        let elapsed = started.elapsed();
        let report = obs.report();
        warm_has_stat_tests |= report.span("stat_tests").is_some();
        if elapsed < warm_best {
            warm_best = elapsed;
            warm_store_load = report.phase_duration("store_load");
            warm_md = to_markdown(&warm.notebook);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(cold_md, warm_md, "warm result must be bit-identical to cold");
    assert!(!warm_has_stat_tests, "warm runs must not open a stat_tests span");

    let speedup = ms(cold_best) / ms(warm_best).max(1e-9);
    let payload = json!({
        "dataset": "enedis_like(BENCH)",
        "n_rows": table.n_rows() as u64,
        "n_permutations": opts.perms as u64,
        "threads": opts.threads as u64,
        "runs": opts.runs as u64,
        "build_ms": ms(build_time),
        "artifact_bytes": artifact_bytes,
        "cold_ms": ms(cold_best),
        "warm_ms": ms(warm_best),
        "speedup": speedup,
        "cold_stat_tests_ms": ms(cold_stat_tests),
        "warm_stat_tests_ms": 0.0,
        "warm_store_load_ms": ms(warm_store_load),
        "identical_output": true,
    });
    let rendered = serde_json::to_string_pretty(&payload).expect("render report");
    std::fs::write(&opts.out, rendered).expect("write report");
    eprintln!(
        "cold {:.1} ms (stat tests {:.1} ms) → warm {:.1} ms (store load {:.1} ms): {speedup:.1}x",
        ms(cold_best),
        ms(cold_stat_tests),
        ms(warm_best),
        ms(warm_store_load)
    );
    eprintln!("wrote {}", opts.out.display());
    if speedup < 5.0 {
        eprintln!("WARNING: speedup below the 5x acceptance bar");
        std::process::exit(1);
    }
}
