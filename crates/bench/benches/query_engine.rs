//! Criterion microbenchmarks: the query-engine substrate — comparison
//! execution from the base table vs from a materialized cube, cube
//! building, and roll-up.

use cn_core::datagen::{enedis_like, Scale};
use cn_core::engine::comparison::execute;
use cn_core::engine::{AggFn, ComparisonSpec, Cube};
use cn_core::tabular::AttrId;
use criterion::{criterion_group, criterion_main, Criterion};

fn setup() -> (cn_core::tabular::Table, ComparisonSpec, Vec<AttrId>) {
    let table = enedis_like(Scale { rows: 0.05, domains: 0.08 }, 3);
    let attrs: Vec<AttrId> = table.schema().attribute_ids().collect();
    let spec = ComparisonSpec {
        group_by: attrs[3],
        select_on: attrs[1],
        val: 0,
        val2: 1,
        measure: table.schema().measure_ids().next().unwrap(),
        agg: AggFn::Sum,
    };
    (table, spec, attrs)
}

fn bench_comparison_paths(c: &mut Criterion) {
    let (table, spec, _) = setup();
    c.bench_function("comparison/base_table_scan", |b| {
        b.iter(|| execute(&table, &spec));
    });
    let pair = Cube::build(&table, &[spec.group_by, spec.select_on]);
    c.bench_function("comparison/from_pair_cube", |b| {
        b.iter(|| pair.comparison(&table, &spec));
    });
}

fn bench_cube_ops(c: &mut Criterion) {
    let (table, _, attrs) = setup();
    c.bench_function("cube/build_pair", |b| {
        b.iter(|| Cube::build(&table, &attrs[..2]));
    });
    c.bench_function("cube/build_triple", |b| {
        b.iter(|| Cube::build(&table, &attrs[..3]));
    });
    let triple = Cube::build(&table, &attrs[..3]);
    c.bench_function("cube/rollup_triple_to_pair", |b| {
        b.iter(|| triple.rollup(&attrs[..2]));
    });
}

fn bench_sampling(c: &mut Criterion) {
    let (table, _, attrs) = setup();
    c.bench_function("sampling/random_20pct", |b| {
        b.iter(|| cn_core::tabular::sampling::random_sample(&table, 0.2, 1));
    });
    c.bench_function("sampling/unbalanced_20pct", |b| {
        b.iter(|| cn_core::tabular::sampling::unbalanced_sample(&table, attrs[5], 0.2, 1));
    });
}

criterion_group!(benches, bench_comparison_paths, bench_cube_ops, bench_sampling);
criterion_main!(benches);
