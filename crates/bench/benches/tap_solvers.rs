//! Criterion microbenchmarks: TAP solver costs by instance size.

use cn_core::tap::baseline::solve_baseline;
use cn_core::tap::{
    generate_instance, solve_exact, solve_heuristic, Budgets, ExactConfig, InstanceConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_heuristic(c: &mut Criterion) {
    let budgets = Budgets { epsilon_t: 25.0, epsilon_d: 30.0 };
    let mut group = c.benchmark_group("algo3_heuristic");
    for n in [100usize, 400, 1600] {
        let instance = generate_instance(&InstanceConfig::euclidean(n, 7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| solve_heuristic(inst, &budgets));
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let budgets = Budgets { epsilon_t: 25.0, epsilon_d: 30.0 };
    let mut group = c.benchmark_group("baseline_topk");
    for n in [100usize, 1600] {
        let instance = generate_instance(&InstanceConfig::euclidean(n, 7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| solve_baseline(inst, &budgets));
        });
    }
    group.finish();
}

fn bench_exact_small(c: &mut Criterion) {
    // Small instances only: exact cost explodes with n (that is Table 4).
    let budgets = Budgets { epsilon_t: 8.0, epsilon_d: 0.6 };
    let cfg = ExactConfig { timeout: Duration::from_secs(30), ..Default::default() };
    let mut group = c.benchmark_group("exact_bnb");
    group.sample_size(10);
    for n in [20usize, 35, 50] {
        let instance = generate_instance(&InstanceConfig::euclidean(n, 7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| solve_exact(inst, &budgets, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristic, bench_baseline, bench_exact_small);
criterion_main!(benches);
