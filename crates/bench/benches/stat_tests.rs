//! Criterion microbenchmarks: the statistical-testing substrate — the
//! dominant pipeline phase (Figure 7) — including the shared-permutation
//! optimization of Section 5.1.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cn_core::stats::{shared_permutation_pvalues, two_sample_pvalue, TestKind, TwoSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() * 10.0).collect()
}

fn bench_single_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_test_200");
    for n in [100usize, 1000, 10000] {
        let x = series(n, 1);
        let y = series(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| two_sample_pvalue(&x, &y, TestKind::MeanDiff, 200, 7));
        });
    }
    group.finish();
}

fn bench_shared_vs_independent(c: &mut Criterion) {
    // Four measures on the same split: shared permutations amortize the
    // shuffling, which is the Section 5.1.1 optimization.
    let n = 2000;
    let xs: Vec<Vec<f64>> = (0..4).map(|i| series(n, i)).collect();
    let ys: Vec<Vec<f64>> = (0..4).map(|i| series(n, 10 + i)).collect();
    c.bench_function("four_measures/shared_permutations", |b| {
        b.iter(|| {
            let samples: Vec<TwoSample> = xs
                .iter()
                .zip(ys.iter())
                .map(|(x, y)| TwoSample { x, y })
                .collect();
            shared_permutation_pvalues(
                &samples,
                &[TestKind::MeanDiff, TestKind::VarDiff],
                200,
                7,
            )
        });
    });
    c.bench_function("four_measures/independent_tests", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for (x, y) in xs.iter().zip(ys.iter()) {
                out.push(two_sample_pvalue(x, y, TestKind::MeanDiff, 200, 7));
                out.push(two_sample_pvalue(x, y, TestKind::VarDiff, 200, 7));
            }
            out
        });
    });
}

fn bench_bh(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ps: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>()).collect();
    c.bench_function("benjamini_hochberg_100k", |b| {
        b.iter(|| cn_core::stats::benjamini_hochberg(&ps));
    });
}

criterion_group!(benches, bench_single_test, bench_shared_vs_independent, bench_bh);
criterion_main!(benches);
