//! Criterion microbenchmarks: the statistical-testing substrate — the
//! dominant pipeline phase (Figure 7) — including the shared-permutation
//! optimization of Section 5.1.1.

use cn_core::stats::rng::derive_seed;
use cn_core::stats::{
    shared_permutation_pvalues, two_sample_pvalue, AttributeBatch, BatchScratch, TestKind,
    TwoSample,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() * 10.0).collect()
}

fn bench_single_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_test_200");
    for n in [100usize, 1000, 10000] {
        let x = series(n, 1);
        let y = series(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| two_sample_pvalue(&x, &y, TestKind::MeanDiff, 200, 7));
        });
    }
    group.finish();
}

fn bench_shared_vs_independent(c: &mut Criterion) {
    // Four measures on the same split: shared permutations amortize the
    // shuffling, which is the Section 5.1.1 optimization.
    let n = 2000;
    let xs: Vec<Vec<f64>> = (0..4).map(|i| series(n, i)).collect();
    let ys: Vec<Vec<f64>> = (0..4).map(|i| series(n, 10 + i)).collect();
    c.bench_function("four_measures/shared_permutations", |b| {
        b.iter(|| {
            let samples: Vec<TwoSample> =
                xs.iter().zip(ys.iter()).map(|(x, y)| TwoSample { x, y }).collect();
            shared_permutation_pvalues(&samples, &[TestKind::MeanDiff, TestKind::VarDiff], 200, 7)
        });
    });
    c.bench_function("four_measures/independent_tests", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for (x, y) in xs.iter().zip(ys.iter()) {
                out.push(two_sample_pvalue(x, y, TestKind::MeanDiff, 200, 7));
                out.push(two_sample_pvalue(x, y, TestKind::VarDiff, 200, 7));
            }
            out
        });
    });
}

/// One categorical attribute's measure series, Zipf-skewed code sizes —
/// the shape of an ENEDIS attribute (Table 2) at bench scale.
fn attribute_series(n_rows: usize, n_codes: usize, n_meas: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..n_codes).map(|c| 1.0 / ((c + 1) as f64).powf(0.8)).collect();
    let wsum: f64 = weights.iter().sum();
    (0..n_meas)
        .map(|m| {
            weights
                .iter()
                .enumerate()
                .map(|(c, w)| {
                    let len = ((w / wsum) * n_rows as f64).ceil() as usize;
                    (0..len).map(|_| rng.random::<f64>() * 10.0 + (c * m) as f64 * 0.05).collect()
                })
                .collect()
        })
        .collect()
}

/// The Figure 7 hot path at attribute granularity: all value pairs of one
/// attribute, every measure, 200 permutations (the default TestConfig).
/// `seed_per_pair` is the pre-batch kernel — one `shared_permutation_pvalues`
/// call per pair, pooling and shuffling from scratch each time. The batch
/// kernels amortize: `pair_exact` compacts once and reuses scratch
/// (bit-identical p-values); `shared_permutations` generates each
/// permutation once per attribute and reuses it across all pairs.
fn bench_attribute_kernels(c: &mut Criterion) {
    let n_perms = 200;
    let kinds = [TestKind::MeanDiff, TestKind::VarDiff];
    for (label, n_codes) in [("sector12", 12usize), ("region26", 26usize)] {
        let series = attribute_series(12_000, n_codes, 2, 42);
        let batch = AttributeBatch::new(&series);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for c1 in 0..n_codes as u32 {
            for c2 in (c1 + 1)..n_codes as u32 {
                pairs.push((c1, c2));
            }
        }
        let name = format!("attribute_200perms/{label}");
        let mut group = c.benchmark_group(name.as_str());
        group.bench_function("seed_per_pair", |b| {
            b.iter(|| {
                let mut out = Vec::with_capacity(pairs.len());
                for &(c1, c2) in &pairs {
                    let samples: Vec<TwoSample> = series
                        .iter()
                        .map(|m| TwoSample { x: &m[c1 as usize], y: &m[c2 as usize] })
                        .collect();
                    out.push(shared_permutation_pvalues(
                        &samples,
                        &kinds,
                        n_perms,
                        derive_seed(7, &[c1 as u64, c2 as u64]),
                    ));
                }
                out
            });
        });
        group.bench_function("batch_pair_exact", |b| {
            let mut scratch = BatchScratch::default();
            b.iter(|| {
                let mut out = Vec::with_capacity(pairs.len());
                for &(c1, c2) in &pairs {
                    out.push(batch.pair_pvalues(
                        c1 as usize,
                        c2 as usize,
                        &kinds,
                        n_perms,
                        derive_seed(7, &[c1 as u64, c2 as u64]),
                        None,
                        &mut scratch,
                    ));
                }
                out
            });
        });
        group.bench_function("batch_shared_permutations", |b| {
            let mut scratch = BatchScratch::default();
            b.iter(|| batch.batched_pvalues(&pairs, &kinds, n_perms, 7, &mut scratch));
        });
        group.finish();
    }
}

fn bench_bh(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ps: Vec<f64> = (0..100_000).map(|_| rng.random::<f64>()).collect();
    c.bench_function("benjamini_hochberg_100k", |b| {
        b.iter(|| cn_core::stats::benjamini_hochberg(&ps));
    });
}

criterion_group!(
    benches,
    bench_single_test,
    bench_shared_vs_independent,
    bench_attribute_kernels,
    bench_bh
);
criterion_main!(benches);
