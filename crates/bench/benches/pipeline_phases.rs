//! Criterion microbenchmarks: end-to-end pipeline phases and the bundled
//! SQL executor.

use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::generation::{generate_candidates, GenerationConfig, TestSource};
use cn_core::insight::significance::TestConfig;
use cn_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn small_table() -> Table {
    enedis_like(Scale { rows: 0.01, domains: 0.03 }, 3)
}

fn bench_full_pipeline(c: &mut Criterion) {
    let table = small_table();
    let cfg = GeneratorConfig {
        generation_config: GenerationConfig {
            test: TestConfig { n_permutations: 99, seed: 1, ..Default::default() },
            ..Default::default()
        },
        n_threads: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end_small_enedis", |b| {
        b.iter(|| cn_core::pipeline::run(&table, &cfg).expect("pipeline run"));
    });
    group.finish();
}

fn bench_generation_only(c: &mut Criterion) {
    let table = small_table();
    let cfg = GenerationConfig {
        test: TestConfig { n_permutations: 99, seed: 1, ..Default::default() },
        ..Default::default()
    };
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("algorithm1_with_bounding", |b| {
        b.iter(|| generate_candidates(&table, &TestSource::Full, &cfg));
    });
    group.finish();
}

fn bench_sqlrun(c: &mut Criterion) {
    let table = small_table();
    let attrs: Vec<_> = table.schema().attribute_ids().collect();
    let spec = cn_core::engine::ComparisonSpec {
        group_by: attrs[3],
        select_on: attrs[1],
        val: 0,
        val2: 1,
        measure: table.schema().measure_ids().next().unwrap(),
        agg: cn_core::engine::AggFn::Sum,
    };
    let sql = cn_core::notebook::sql::comparison_sql(&table, &spec);
    c.bench_function("sqlrun/parse", |b| {
        b.iter(|| cn_core::sqlrun::parse(&sql).unwrap());
    });
    c.bench_function("sqlrun/parse_and_execute", |b| {
        b.iter(|| cn_core::sqlrun::run_sql(&sql, &table).unwrap());
    });
}

criterion_group!(benches, bench_full_pipeline, bench_generation_only, bench_sqlrun);
criterion_main!(benches);
