//! Saving and loading the index as one `CNIDX` file.
//!
//! Writes are atomic (temp file + rename, `cn-store` discipline) so a
//! crash never leaves a half-written index where a reader finds it.
//! Loads are strict — envelope checks, then payload invariants — and
//! [`load_or_rebuild`] never fails: a damaged file is quarantined for
//! post-mortem (`<file>.quarantined[.N]`, never clobbering earlier
//! evidence) and the caller gets an empty index to rebuild into.

use crate::error::IndexError;
use crate::format::{decode_envelope, encode_envelope, FORMAT_VERSION};
use crate::index::Index;
use crate::signature::Document;
use std::fs;
use std::path::{Path, PathBuf};

/// File extension for index files.
pub const EXTENSION: &str = "cnidx";

fn io_err(path: &Path, e: std::io::Error) -> IndexError {
    IndexError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// Serializes the index payload: document list in insertion order, term
/// weights as IEEE-754 bit patterns so a load replays identical scores.
fn to_json(index: &Index) -> serde_json::Value {
    let docs: Vec<serde_json::Value> = index
        .docs()
        .iter()
        .map(|d| {
            serde_json::json!({
                "id": d.id.clone(),
                "dataset": d.dataset.clone(),
                "title": d.title.clone(),
                "entries": d.entries,
                "terms": d
                    .terms
                    .iter()
                    .map(|(t, w)| serde_json::json!([t, w.to_bits()]))
                    .collect::<Vec<_>>(),
            })
        })
        .collect();
    serde_json::json!({ "format_version": FORMAT_VERSION, "docs": docs })
}

fn str_field(v: &serde_json::Value, key: &str) -> Result<String, IndexError> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| IndexError::Corrupt(format!("document missing string field `{key}`")))
}

fn parse_doc(v: &serde_json::Value) -> Result<Document, IndexError> {
    let id = str_field(v, "id")?;
    if id.len() != 32 || !id.bytes().all(|c| c.is_ascii_hexdigit()) {
        return Err(IndexError::Invalid(format!("malformed document fingerprint `{id}`")));
    }
    let dataset = str_field(v, "dataset")?;
    let title = str_field(v, "title")?;
    let entries = v
        .get("entries")
        .and_then(|x| x.as_u64())
        .ok_or_else(|| IndexError::Corrupt("document missing integer field `entries`".into()))?;
    let raw = v
        .get("terms")
        .and_then(|x| x.as_array())
        .ok_or_else(|| IndexError::Corrupt("document missing array field `terms`".into()))?;
    let mut terms = Vec::with_capacity(raw.len());
    for pair in raw {
        let arr = pair
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| IndexError::Corrupt("term is not a [name, weight_bits] pair".into()))?;
        let name = arr[0]
            .as_str()
            .ok_or_else(|| IndexError::Corrupt("term name is not a string".into()))?;
        let bits = arr[1]
            .as_u64()
            .ok_or_else(|| IndexError::Corrupt("term weight is not an integer".into()))?;
        let weight = f64::from_bits(bits);
        if !weight.is_finite() || weight < 0.0 {
            return Err(IndexError::Invalid(format!(
                "term `{name}` has non-finite or negative weight"
            )));
        }
        terms.push((name.to_string(), weight));
    }
    if !terms.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(IndexError::Invalid(format!(
            "terms of document `{id}` are not sorted and unique"
        )));
    }
    Ok(Document { id, dataset, title, entries, terms })
}

/// Persist the index to `path` atomically. Returns bytes written.
///
/// Fault sites: `index.write` (maps to [`IndexError::Io`]) and
/// `index.write.bytes` (corrupts the envelope before it reaches disk);
/// both no-ops unless a chaos test installs a plan via `cn-fault`.
pub fn save(index: &Index, path: &Path) -> Result<u64, IndexError> {
    let payload = serde_json::to_string(&to_json(index))
        .map_err(|e| IndexError::Invalid(format!("serialize: {e}")))?;
    let mut bytes = encode_envelope(payload.as_bytes());
    cn_fault::point("index.write")
        .map_err(|f| IndexError::Io { path: path.display().to_string(), message: f.message })?;
    cn_fault::corrupt("index.write.bytes", &mut bytes);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
    }
    let tmp = path.with_extension(format!("{EXTENSION}.tmp"));
    fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(bytes.len() as u64)
}

/// Load and validate the index at `path`.
///
/// Fault sites: `index.read` (maps to [`IndexError::Io`]) and
/// `index.read.bytes` (corrupts the bytes after the read, so the
/// checksum check sees damage exactly as a bad disk would present it).
pub fn load(path: &Path) -> Result<Index, IndexError> {
    cn_fault::point("index.read")
        .map_err(|f| IndexError::Io { path: path.display().to_string(), message: f.message })?;
    let mut bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(IndexError::NotFound(path.display().to_string()))
        }
        Err(e) => return Err(io_err(path, e)),
    };
    cn_fault::corrupt("index.read.bytes", &mut bytes);
    let payload = decode_envelope(&bytes)?;
    let text = std::str::from_utf8(payload)
        .map_err(|e| IndexError::Corrupt(format!("payload not UTF-8: {e}")))?;
    let value: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| IndexError::Corrupt(format!("payload parse: {e}")))?;
    let docs = value
        .get("docs")
        .and_then(|x| x.as_array())
        .ok_or_else(|| IndexError::Corrupt("payload missing `docs` array".into()))?;
    let mut index = Index::new();
    for raw in docs {
        let doc = parse_doc(raw)?;
        let id = doc.id.clone();
        if !index.insert(doc) {
            return Err(IndexError::Invalid(format!("duplicate document id `{id}`")));
        }
    }
    Ok(index)
}

/// Move a damaged index file aside for post-mortem instead of deleting
/// it: `<file>` becomes `<file>.quarantined` (or `.quarantined.1`, … —
/// an earlier quarantine is evidence and is never clobbered). Returns
/// the destination path, or `Ok(None)` if no file existed.
pub fn quarantine(path: &Path) -> Result<Option<PathBuf>, IndexError> {
    if !path.is_file() {
        return Ok(None);
    }
    let base = format!("{}.quarantined", path.display());
    let mut dest = PathBuf::from(&base);
    let mut n = 0u32;
    while dest.exists() {
        n += 1;
        dest = PathBuf::from(format!("{base}.{n}"));
    }
    fs::rename(path, &dest).map_err(|e| io_err(path, e))?;
    Ok(Some(dest))
}

/// How [`load_or_rebuild`] obtained its index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The file loaded cleanly with this many documents.
    Loaded(usize),
    /// No file existed; starting cold.
    Fresh,
    /// The file was damaged or version-skewed; it was moved to the
    /// contained path (`None` if it vanished mid-quarantine) and the
    /// index starts cold.
    Quarantined(Option<PathBuf>),
    /// The file could be neither loaded nor quarantined (I/O failure);
    /// the index starts cold and persistence may keep failing.
    Failed(String),
}

/// Open the index at `path`, never failing: a clean file loads, a
/// missing file starts cold, and a damaged one is quarantined before
/// starting cold — the serving layer always gets a usable index.
pub fn load_or_rebuild(path: &Path) -> (Index, LoadOutcome) {
    match load(path) {
        Ok(index) => {
            let n = index.len();
            (index, LoadOutcome::Loaded(n))
        }
        Err(IndexError::NotFound(_)) => (Index::new(), LoadOutcome::Fresh),
        Err(IndexError::Io { .. }) => match quarantine(path) {
            Ok(dest) => (Index::new(), LoadOutcome::Quarantined(dest)),
            Err(e) => (Index::new(), LoadOutcome::Failed(e.to_string())),
        },
        Err(_) => match quarantine(path) {
            Ok(dest) => (Index::new(), LoadOutcome::Quarantined(dest)),
            Err(e) => (Index::new(), LoadOutcome::Failed(e.to_string())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ScoreKind;
    use crate::signature::document;

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cn-index-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("index.{EXTENSION}"))
    }

    fn sample_index() -> Index {
        let mut ix = Index::new();
        for i in 0..8 {
            ix.insert(document(
                format!("set{}", i % 3),
                format!("Notebook {i}"),
                (i + 1) as u64,
                vec![
                    (format!("group:a{}", i % 4), 1.0 + i as f64 * 0.25),
                    ("measure:cases".to_string(), 1.0),
                ],
            ));
        }
        ix
    }

    #[test]
    fn save_load_round_trip_preserves_ranking_bits() {
        let path = tmp_path("round-trip");
        let ix = sample_index();
        assert!(save(&ix, &path).unwrap() > 0);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.docs(), ix.docs());
        let query = vec![("group:a1".to_string(), 1.0), ("measure:cases".to_string(), 0.5)];
        for kind in [ScoreKind::Cosine, ScoreKind::Jaccard] {
            let before = ix.search(&query, 10, kind, 1);
            let after = loaded.search(&query, 10, kind, 1);
            assert_eq!(before.len(), after.len());
            for (a, b) in before.iter().zip(after.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_is_not_found() {
        let path = tmp_path("missing");
        assert!(matches!(load(&path).unwrap_err(), IndexError::NotFound(_)));
        let (ix, outcome) = load_or_rebuild(&path);
        assert!(ix.is_empty());
        assert_eq!(outcome, LoadOutcome::Fresh);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn rejects_invalid_payloads() {
        let path = tmp_path("invalid");
        // Duplicate ids.
        let doc = document("d", "t", 1, vec![("val:x".to_string(), 1.0)]);
        let payload = serde_json::json!({
            "format_version": FORMAT_VERSION,
            "docs": [
                {"id": doc.id.clone(), "dataset": "d", "title": "t", "entries": 1,
                 "terms": [["val:x", 1.0f64.to_bits()]]},
                {"id": doc.id.clone(), "dataset": "d", "title": "t", "entries": 1,
                 "terms": [["val:x", 1.0f64.to_bits()]]},
            ],
        });
        fs::write(&path, encode_envelope(payload.to_string().as_bytes())).unwrap();
        assert!(matches!(load(&path).unwrap_err(), IndexError::Invalid(_)));
        // Negative weight.
        let payload = serde_json::json!({
            "format_version": FORMAT_VERSION,
            "docs": [{"id": doc.id.clone(), "dataset": "d", "title": "t", "entries": 1,
                      "terms": [["val:x", (-1.0f64).to_bits()]]}],
        });
        fs::write(&path, encode_envelope(payload.to_string().as_bytes())).unwrap();
        assert!(matches!(load(&path).unwrap_err(), IndexError::Invalid(_)));
        // Unsorted terms.
        let payload = serde_json::json!({
            "format_version": FORMAT_VERSION,
            "docs": [{"id": doc.id.clone(), "dataset": "d", "title": "t", "entries": 1,
                      "terms": [["val:z", 1.0f64.to_bits()], ["val:a", 1.0f64.to_bits()]]}],
        });
        fs::write(&path, encode_envelope(payload.to_string().as_bytes())).unwrap();
        assert!(matches!(load(&path).unwrap_err(), IndexError::Invalid(_)));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn damaged_file_quarantines_and_rebuilds_cold() {
        let path = tmp_path("damage");
        let ix = sample_index();
        save(&ix, &path).unwrap();

        // One-bit corruption → quarantine + cold index.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let (cold, outcome) = load_or_rebuild(&path);
        assert!(cold.is_empty());
        let dest = match outcome {
            LoadOutcome::Quarantined(Some(d)) => d,
            other => panic!("expected quarantine, got {other:?}"),
        };
        assert!(dest.to_string_lossy().ends_with(".quarantined"));
        assert!(dest.is_file());
        assert!(!path.exists(), "damaged file moved aside");

        // Version skew quarantines too, and never clobbers the first.
        let mut bytes = encode_envelope(b"{\"docs\":[]}");
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let (_, outcome) = load_or_rebuild(&path);
        let second = match outcome {
            LoadOutcome::Quarantined(Some(d)) => d,
            other => panic!("expected quarantine, got {other:?}"),
        };
        assert!(second.to_string_lossy().ends_with(".quarantined.1"));
        assert!(dest.is_file(), "earlier quarantine untouched");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn load_or_rebuild_loads_clean_files() {
        let path = tmp_path("clean");
        let ix = sample_index();
        save(&ix, &path).unwrap();
        let (loaded, outcome) = load_or_rebuild(&path);
        assert_eq!(outcome, LoadOutcome::Loaded(ix.len()));
        assert_eq!(loaded.docs(), ix.docs());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
