//! # cn-index
//!
//! A persistent similarity index over generated notebooks: every
//! completed notebook is reduced to a deterministic, content-addressed
//! **signature** — a weighted bag of terms over its grouping attributes,
//! selected value pairs, measures, aggregation functions, insight
//! types, and significance buckets — and registered in an inverted
//! index that answers weighted top-k similarity queries (cosine or
//! weighted Jaccard) with stable, thread-count-invariant rankings.
//!
//! The paper generates each notebook from scratch; once a deployment
//! has generated hundreds, the corpus itself becomes evidence about
//! which comparisons analysts found worth keeping. This crate is the
//! retrieval layer over that corpus:
//!
//! - [`signature`] — terms from `cn_notebook::model` cells and
//!   `cn_insight::types` insights; document ids are 128-bit dual-FNV
//!   fingerprints of exactly the indexed content, so re-registering an
//!   identical notebook dedups instead of double-counting.
//! - [`index`] — inverted postings for candidate generation plus
//!   forward term vectors for exact scoring. Each candidate's score is
//!   accumulated wholly within one worker in canonical term order, so
//!   search results (including score bits) are identical for any
//!   thread count; ties break on ascending content id.
//! - [`format`] — the `CNIDX` envelope: magic, format version, payload
//!   length, JSON payload, FNV-1a-64 checksum — the same layout and
//!   check order as `cn-store`'s `CNSTORE` envelope, under a different
//!   magic so the two file kinds can never read each other.
//! - [`persist`] — atomic saves (temp + rename), strict loads, and
//!   [`persist::load_or_rebuild`], which quarantines a damaged file
//!   (`<file>.quarantined[.N]`) and hands back a cold index instead of
//!   failing — the serving layer always gets something usable.
//!
//! Pipeline integration (`index_document`, retrieval-biased
//! continuation reranking) lives in `cn-pipeline`; the HTTP surface
//! (`GET /v1/search`, `GET /v1/notebooks/{id}/similar`, the background
//! indexer, and the `use_index` continuation knob) in `cn-serve`; the
//! `cn index build|search|inspect` subcommand in `cn-core`.

pub mod error;
pub mod format;
pub mod index;
pub mod persist;
pub mod signature;

pub use error::IndexError;
pub use format::{decode_envelope, encode_envelope, FORMAT_VERSION, MAGIC};
pub use index::{Hit, Index, ScoreKind};
pub use persist::{load, load_or_rebuild, quarantine, save, LoadOutcome, EXTENSION};
pub use signature::{
    document, notebook_signature, parse_query, significance_bucket, type_term, Document,
    SignatureBuilder,
};
