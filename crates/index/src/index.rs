//! The inverted index and its weighted top-k ranking kernel.
//!
//! Two structures per document: the **postings** (term → sorted doc
//! ordinals) find candidates sharing at least one query term; the
//! document's own sorted term vector scores each candidate *exactly*,
//! with every floating-point accumulation happening inside one
//! candidate in canonical term order. Parallel search only partitions
//! the candidate list — each document's score is computed whole by one
//! worker and chunks are concatenated back in order — so rankings (and
//! score bits) are identical for any thread count, the same
//! merge-at-join discipline as `cn_obs::LocalMetrics`.
//!
//! Ties break on the content id (ascending), which is stable across
//! insertion order, thread counts, and save/load.

use crate::signature::Document;
use std::collections::{BTreeSet, HashMap};

/// The similarity measure of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreKind {
    /// `dot(q, d) / (|q| · |d|)` over term weights.
    Cosine,
    /// Weighted Jaccard: `Σ min(q_t, d_t) / Σ max(q_t, d_t)`.
    Jaccard,
}

impl ScoreKind {
    /// Wire name (`mode` query parameter).
    pub fn name(self) -> &'static str {
        match self {
            ScoreKind::Cosine => "cosine",
            ScoreKind::Jaccard => "jaccard",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<ScoreKind> {
        match s {
            "cosine" => Some(ScoreKind::Cosine),
            "jaccard" => Some(ScoreKind::Jaccard),
            _ => None,
        }
    }
}

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Content id of the matched document.
    pub id: String,
    /// Dataset the matched notebook explored.
    pub dataset: String,
    /// Notebook title.
    pub title: String,
    /// Number of notebook entries.
    pub entries: u64,
    /// Similarity in `[0, 1]`.
    pub score: f64,
}

/// The in-memory index: documents plus the inverted term postings.
#[derive(Debug, Default, Clone)]
pub struct Index {
    docs: Vec<Document>,
    /// Precomputed L2 norm per document, parallel to `docs`.
    norms: Vec<f64>,
    by_id: HashMap<String, u32>,
    postings: HashMap<String, Vec<u32>>,
}

/// L2 norm of a canonical term vector, accumulated in term order.
fn l2_norm(terms: &[(String, f64)]) -> f64 {
    terms.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
}

/// Canonicalizes a query: sort by term, merge duplicate weights.
fn canonical_query(query: &[(String, f64)]) -> Vec<(String, f64)> {
    let mut merged: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for (t, w) in query {
        *merged.entry(t.as_str()).or_insert(0.0) += w;
    }
    merged.into_iter().map(|(t, w)| (t.to_string(), w)).collect()
}

/// Scores one document against a canonical query, walking the two
/// sorted term vectors in lockstep — a fixed accumulation order.
fn score_doc(
    kind: ScoreKind,
    query: &[(String, f64)],
    qnorm: f64,
    doc: &Document,
    dnorm: f64,
) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    match kind {
        ScoreKind::Cosine => {
            if qnorm == 0.0 || dnorm == 0.0 {
                return 0.0;
            }
            let mut dot = 0.0;
            while i < query.len() && j < doc.terms.len() {
                match query[i].0.as_str().cmp(doc.terms[j].0.as_str()) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        dot += query[i].1 * doc.terms[j].1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            dot / (qnorm * dnorm)
        }
        ScoreKind::Jaccard => {
            let (mut min_sum, mut max_sum) = (0.0f64, 0.0f64);
            while i < query.len() && j < doc.terms.len() {
                match query[i].0.as_str().cmp(doc.terms[j].0.as_str()) {
                    std::cmp::Ordering::Less => {
                        max_sum += query[i].1;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        max_sum += doc.terms[j].1;
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        min_sum += query[i].1.min(doc.terms[j].1);
                        max_sum += query[i].1.max(doc.terms[j].1);
                        i += 1;
                        j += 1;
                    }
                }
            }
            max_sum += query[i..].iter().map(|(_, w)| w).sum::<f64>();
            max_sum += doc.terms[j..].iter().map(|(_, w)| w).sum::<f64>();
            if max_sum == 0.0 {
                0.0
            } else {
                min_sum / max_sum
            }
        }
    }
}

impl Index {
    /// An empty index.
    pub fn new() -> Index {
        Index::default()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The indexed documents, in insertion order.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The document with content id `id`.
    pub fn get(&self, id: &str) -> Option<&Document> {
        self.by_id.get(id).map(|&i| &self.docs[i as usize])
    }

    /// Registers `doc`; returns `false` (a no-op) when a document with
    /// the same content id is already indexed.
    pub fn insert(&mut self, doc: Document) -> bool {
        if self.by_id.contains_key(&doc.id) {
            return false;
        }
        let ordinal = self.docs.len() as u32;
        self.by_id.insert(doc.id.clone(), ordinal);
        for (term, _) in &doc.terms {
            self.postings.entry(term.clone()).or_default().push(ordinal);
        }
        self.norms.push(l2_norm(&doc.terms));
        self.docs.push(doc);
        true
    }

    /// Candidate ordinals: every document sharing at least one query
    /// term, ascending.
    fn candidates(&self, query: &[(String, f64)]) -> Vec<u32> {
        let mut set = BTreeSet::new();
        for (term, _) in query {
            if let Some(posting) = self.postings.get(term) {
                set.extend(posting.iter().copied());
            }
        }
        set.into_iter().collect()
    }

    /// Weighted top-k search. Returns up to `k` hits, best first; ties
    /// break on ascending content id. `n_threads` only partitions the
    /// candidate scoring — the ranking (including score bits) is
    /// identical for every thread count.
    pub fn search(
        &self,
        query: &[(String, f64)],
        k: usize,
        kind: ScoreKind,
        n_threads: usize,
    ) -> Vec<Hit> {
        let query = canonical_query(query);
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let qnorm = l2_norm(&query);
        let candidates = self.candidates(&query);
        let scored = self.score_candidates(&candidates, &query, qnorm, kind, n_threads);
        let mut ranked: Vec<(u32, f64)> = scored.into_iter().filter(|&(_, s)| s > 0.0).collect();
        ranked.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then_with(|| self.docs[a.0 as usize].id.cmp(&self.docs[b.0 as usize].id))
        });
        ranked.truncate(k);
        ranked
            .into_iter()
            .map(|(ordinal, score)| {
                let d = &self.docs[ordinal as usize];
                Hit {
                    id: d.id.clone(),
                    dataset: d.dataset.clone(),
                    title: d.title.clone(),
                    entries: d.entries,
                    score,
                }
            })
            .collect()
    }

    /// Documents most similar to the one with content id `id`,
    /// excluding itself. `None` when `id` is not indexed.
    pub fn similar(
        &self,
        id: &str,
        k: usize,
        kind: ScoreKind,
        n_threads: usize,
    ) -> Option<Vec<Hit>> {
        let doc = self.get(id)?;
        Some(self.similar_to(doc, k, kind, n_threads))
    }

    /// Documents most similar to `doc` (which need not be indexed),
    /// excluding any indexed copy of it.
    pub fn similar_to(
        &self,
        doc: &Document,
        k: usize,
        kind: ScoreKind,
        n_threads: usize,
    ) -> Vec<Hit> {
        let mut hits = self.search(&doc.terms, k.saturating_add(1), kind, n_threads);
        hits.retain(|h| h.id != doc.id);
        hits.truncate(k);
        hits
    }

    /// Scores `candidates` (each whole, in one worker), concatenating
    /// per-chunk results back in candidate order.
    fn score_candidates(
        &self,
        candidates: &[u32],
        query: &[(String, f64)],
        qnorm: f64,
        kind: ScoreKind,
        n_threads: usize,
    ) -> Vec<(u32, f64)> {
        let score_one = |&ordinal: &u32| {
            let d = &self.docs[ordinal as usize];
            (ordinal, score_doc(kind, query, qnorm, d, self.norms[ordinal as usize]))
        };
        let n_threads = n_threads.max(1).min(candidates.len().max(1));
        if n_threads == 1 {
            return candidates.iter().map(score_one).collect();
        }
        let chunk = candidates.len().div_ceil(n_threads);
        std::thread::scope(|scope| {
            let workers: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(score_one).collect::<Vec<_>>()))
                .collect();
            let mut out = Vec::with_capacity(candidates.len());
            for w in workers {
                out.extend(w.join().expect("index scoring worker panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::document;

    fn doc(dataset: &str, title: &str, terms: &[(&str, f64)]) -> Document {
        document(dataset, title, 1, terms.iter().map(|(t, w)| (t.to_string(), *w)).collect())
    }

    fn ids(hits: &[Hit]) -> Vec<&str> {
        hits.iter().map(|h| h.id.as_str()).collect()
    }

    #[test]
    fn exact_match_outranks_partial_overlap() {
        let mut ix = Index::new();
        let a = doc("d", "a", &[("group:month", 1.0), ("measure:cases", 1.0)]);
        let b = doc("d", "b", &[("group:month", 1.0), ("measure:deaths", 1.0)]);
        let c = doc("d", "c", &[("group:region", 1.0), ("measure:sales", 1.0)]);
        let (ia, ib) = (a.id.clone(), b.id.clone());
        assert!(ix.insert(a));
        assert!(ix.insert(b));
        assert!(ix.insert(c));
        for kind in [ScoreKind::Cosine, ScoreKind::Jaccard] {
            let hits = ix.search(
                &[("group:month".to_string(), 1.0), ("measure:cases".to_string(), 1.0)],
                10,
                kind,
                1,
            );
            assert_eq!(ids(&hits), vec![ia.as_str(), ib.as_str()], "{kind:?}");
            assert!(hits[0].score > hits[1].score);
            assert!((0.0..=1.0 + 1e-12).contains(&hits[0].score));
        }
    }

    #[test]
    fn duplicate_content_dedups_and_k_truncates() {
        let mut ix = Index::new();
        let a = doc("d", "a", &[("group:month", 1.0)]);
        assert!(ix.insert(a.clone()));
        assert!(!ix.insert(a), "same content id must be a no-op");
        assert_eq!(ix.len(), 1);
        for i in 0..5 {
            assert!(ix.insert(doc("d", &format!("t{i}"), &[("group:month", 1.0)])));
        }
        let hits = ix.search(&[("group:month".to_string(), 1.0)], 3, ScoreKind::Cosine, 1);
        assert_eq!(hits.len(), 3);
        let empty = ix.search(&[("group:nothing".to_string(), 1.0)], 3, ScoreKind::Cosine, 1);
        assert!(empty.is_empty());
        assert!(ix.search(&[], 3, ScoreKind::Cosine, 1).is_empty());
    }

    #[test]
    fn ties_break_on_ascending_content_id() {
        let mut ix = Index::new();
        // Identical term vectors under different titles: equal scores.
        let mut tied: Vec<String> = (0..6)
            .map(|i| {
                let d = doc("d", &format!("tied{i}"), &[("group:month", 1.0)]);
                let id = d.id.clone();
                assert!(ix.insert(d));
                id
            })
            .collect();
        tied.sort();
        let hits = ix.search(&[("group:month".to_string(), 1.0)], 6, ScoreKind::Cosine, 1);
        assert_eq!(ids(&hits), tied.iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn similar_excludes_self() {
        let mut ix = Index::new();
        let a = doc("d", "a", &[("group:month", 2.0), ("measure:cases", 1.0)]);
        let b = doc("d", "b", &[("group:month", 1.0)]);
        let ia = a.id.clone();
        let ib = b.id.clone();
        ix.insert(a.clone());
        ix.insert(b);
        let hits = ix.similar(&ia, 5, ScoreKind::Cosine, 1).unwrap();
        assert_eq!(ids(&hits), vec![ib.as_str()]);
        // An unindexed anchor document works through similar_to.
        let ghost = doc("d", "ghost", &[("group:month", 1.0), ("measure:cases", 3.0)]);
        let hits = ix.similar_to(&ghost, 5, ScoreKind::Jaccard, 1);
        assert_eq!(hits.len(), 2);
        assert!(ix.similar("ffffffffffffffffffffffffffffffff", 5, ScoreKind::Cosine, 1).is_none());
    }

    #[test]
    fn thread_count_never_changes_the_ranking() {
        let mut ix = Index::new();
        for i in 0..64 {
            ix.insert(doc(
                &format!("d{}", i % 5),
                &format!("t{i}"),
                &[
                    (&format!("group:a{}", i % 7), 1.0 + (i % 3) as f64),
                    (&format!("measure:m{}", i % 4), 1.0),
                    ("val:x", 0.5 * (i % 2) as f64 + 0.5),
                ],
            ));
        }
        let query = vec![
            ("group:a1".to_string(), 1.0),
            ("measure:m2".to_string(), 2.0),
            ("val:x".to_string(), 0.5),
        ];
        for kind in [ScoreKind::Cosine, ScoreKind::Jaccard] {
            let base = ix.search(&query, 20, kind, 1);
            for threads in [2, 4, 8, 13] {
                let multi = ix.search(&query, 20, kind, threads);
                assert_eq!(ids(&base), ids(&multi), "{kind:?} threads={threads}");
                for (a, b) in base.iter().zip(multi.iter()) {
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits must match");
                }
            }
        }
    }

    #[test]
    fn score_kind_names_round_trip() {
        for kind in [ScoreKind::Cosine, ScoreKind::Jaccard] {
            assert_eq!(ScoreKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScoreKind::parse("euclid"), None);
    }
}
