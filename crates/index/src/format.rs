//! The on-disk `CNIDX` envelope.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CNINDEX\n"
//! 8       4     format version, u32 LE
//! 12      8     payload length, u64 LE
//! 20      n     payload (JSON-encoded document list)
//! 20+n    8     FNV-1a-64 checksum of the payload, u64 LE
//! ```
//!
//! Same layout and check order as the `CNSTORE` envelope — minimum
//! length, magic, version, declared length against actual bytes,
//! checksum — each failure a distinct [`IndexError`] so the serving
//! layer can count version skew separately from bit rot before falling
//! back to a cold rebuild.

use crate::error::IndexError;

/// File magic; the trailing newline keeps accidental text files out.
pub const MAGIC: [u8; 8] = *b"CNINDEX\n";

/// Format version written by this build; bumped on any layout change to
/// the envelope or the payload schema.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8;
const CHECKSUM_LEN: usize = 8;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap a payload in the versioned, checksummed envelope.
pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Unwrap an envelope, returning the payload slice.
pub fn decode_envelope(bytes: &[u8]) -> Result<&[u8], IndexError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(IndexError::Corrupt(format!(
            "file too short: {} bytes, envelope needs at least {}",
            bytes.len(),
            HEADER_LEN + CHECKSUM_LEN
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(IndexError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(IndexError::Version { found: version, supported: FORMAT_VERSION });
    }
    let declared = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let actual = (bytes.len() - HEADER_LEN - CHECKSUM_LEN) as u64;
    if declared != actual {
        return Err(IndexError::Corrupt(format!(
            "payload length mismatch: header says {declared}, file holds {actual}"
        )));
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN];
    let stored = u64::from_le_bytes(bytes[bytes.len() - CHECKSUM_LEN..].try_into().unwrap());
    let computed = fnv64(payload);
    if stored != computed {
        return Err(IndexError::Corrupt(format!(
            "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = br#"{"docs":[]}"#;
        let enc = encode_envelope(payload);
        assert_eq!(decode_envelope(&enc).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let enc = encode_envelope(b"");
        assert_eq!(decode_envelope(&enc).unwrap(), b"");
    }

    #[test]
    fn rejects_truncation() {
        let enc = encode_envelope(b"data");
        for cut in [0, 5, enc.len() - 1] {
            let err = decode_envelope(&enc[..cut]).unwrap_err();
            assert!(matches!(err, IndexError::Corrupt(_)), "cut={cut} gave {err:?}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut enc = encode_envelope(b"data");
        enc[0] = b'X';
        assert_eq!(decode_envelope(&enc).unwrap_err(), IndexError::BadMagic);
    }

    #[test]
    fn magic_differs_from_store_magic() {
        // The two envelopes must never read each other's files.
        let enc = encode_envelope(b"data");
        assert_ne!(&enc[..8], &cn_store::format::MAGIC[..]);
        assert!(cn_store::format::decode_envelope(&enc).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut enc = encode_envelope(b"data");
        enc[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_envelope(&enc).unwrap_err(),
            IndexError::Version { found: 99, supported: FORMAT_VERSION }
        );
    }

    #[test]
    fn rejects_bit_flip() {
        let mut enc = encode_envelope(b"important data");
        let mid = HEADER_LEN + 3;
        enc[mid] ^= 0x40;
        assert!(matches!(decode_envelope(&enc).unwrap_err(), IndexError::Corrupt(_)));
    }
}
