//! Deterministic content-addressed signatures for notebooks.
//!
//! A signature is a weighted bag of **terms** — short namespaced strings
//! describing what a notebook compares: the grouping attributes
//! (`group:month`), the selected value pairs (`val:May`,
//! `pair:May|April`), the measures (`measure:cases`), the aggregation
//! functions (`agg:avg`), the insight types (`type:mean_greater`), and
//! the significance buckets of the supported insights (`sig:2`). A term
//! occurring in several cells accumulates weight, so a notebook that
//! keeps returning to the same attribute matches other notebooks about
//! that attribute more strongly.
//!
//! Terms are derived from `cn_notebook::model` (cells: grouping header,
//! value aliases, aggregate) and `cn_insight::types` (typed insights:
//! kind, decoded value names, significance). The same notebook always
//! produces the same sorted term vector, and the document id is a
//! 128-bit fingerprint of exactly that content (`cn_store`'s dual-FNV
//! hasher under a domain tag) — re-registering an identical notebook
//! dedups instead of double-counting.

use cn_insight::types::InsightType;
use cn_notebook::model::NotebookEntry;
use cn_notebook::Notebook;
use cn_store::FingerprintHasher;
use std::collections::BTreeMap;

/// Domain tag hashed ahead of every document id, so index fingerprints
/// can never collide with store prefix fingerprints over the same data.
const DOC_DOMAIN: &str = "cn-index-doc-v1";

/// Significance bucket of `sig(i) = 1 − p`: 0 below the paper's 0.95
/// threshold, then one bucket per extra nine (0.95, 0.99, 0.999).
pub fn significance_bucket(significance: f64) -> u8 {
    if significance >= 0.999 {
        3
    } else if significance >= 0.99 {
        2
    } else if significance >= 0.95 {
        1
    } else {
        0
    }
}

/// The stable term name of an insight type (snake_case, index-local —
/// the human-readable `InsightType::name` may change freely).
pub fn type_term(kind: InsightType) -> &'static str {
    match kind {
        InsightType::MeanGreater => "mean_greater",
        InsightType::VarianceGreater => "variance_greater",
        InsightType::ExtremeGreater => "extreme_greater",
    }
}

/// Accumulates weighted terms; [`SignatureBuilder::finish`] returns the
/// canonical (sorted, deduplicated) term vector.
#[derive(Debug, Default, Clone)]
pub struct SignatureBuilder {
    terms: BTreeMap<String, f64>,
}

impl SignatureBuilder {
    /// An empty signature.
    pub fn new() -> SignatureBuilder {
        SignatureBuilder::default()
    }

    /// Adds `weight` to `term`.
    pub fn add_term(&mut self, term: impl Into<String>, weight: f64) {
        *self.terms.entry(term.into()).or_insert(0.0) += weight;
    }

    /// Terms of one comparison query, from its decoded names: grouping
    /// attribute, selection attribute, the two selected values (and
    /// their ordered pair), the measure, and the aggregate.
    pub fn add_comparison(
        &mut self,
        group: &str,
        select: &str,
        val: &str,
        val2: &str,
        measure: &str,
        agg: &str,
    ) {
        self.add_term(format!("group:{group}"), 1.0);
        self.add_term(format!("select:{select}"), 1.0);
        self.add_term(format!("val:{val}"), 1.0);
        self.add_term(format!("val:{val2}"), 1.0);
        self.add_term(format!("pair:{val}|{val2}"), 1.0);
        self.add_term(format!("measure:{measure}"), 1.0);
        self.add_term(format!("agg:{agg}"), 1.0);
    }

    /// Terms of one typed insight: its kind and significance bucket.
    pub fn add_insight(&mut self, kind: InsightType, significance: f64) {
        self.add_term(format!("type:{}", type_term(kind)), 1.0);
        self.add_term(format!("sig:{}", significance_bucket(significance)), 1.0);
    }

    /// Terms derivable from a rendered notebook cell alone (no table in
    /// hand): the grouping header, the two value-column aliases, the
    /// aggregate, and the significance buckets of its insight notes.
    pub fn add_entry(&mut self, entry: &NotebookEntry) {
        let (group, left, right) = &entry.headers;
        self.add_term(format!("group:{group}"), 1.0);
        self.add_term(format!("val:{left}"), 1.0);
        self.add_term(format!("val:{right}"), 1.0);
        self.add_term(format!("pair:{left}|{right}"), 1.0);
        self.add_term(format!("agg:{}", entry.spec.agg.sql_name()), 1.0);
        for note in &entry.insights {
            self.add_term(format!("sig:{}", significance_bucket(note.significance)), 1.0);
        }
    }

    /// The canonical term vector: sorted by term, weights accumulated.
    pub fn finish(self) -> Vec<(String, f64)> {
        self.terms.into_iter().collect()
    }
}

/// Signature of a rendered notebook, cell by cell (the model-only view;
/// richer typed terms come from `cn_pipeline::index_document`, which
/// also sees the table and the scored insights).
pub fn notebook_signature(notebook: &Notebook) -> Vec<(String, f64)> {
    let mut sig = SignatureBuilder::new();
    for entry in &notebook.entries {
        sig.add_entry(entry);
    }
    sig.finish()
}

/// One indexed notebook: a content-addressed id, display metadata, and
/// the canonical term vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Content fingerprint (32 lowercase hex digits) over dataset,
    /// title, and terms.
    pub id: String,
    /// Catalog name of the dataset the notebook explored.
    pub dataset: String,
    /// Notebook title.
    pub title: String,
    /// Number of notebook entries.
    pub entries: u64,
    /// Sorted `(term, weight)` vector.
    pub terms: Vec<(String, f64)>,
}

/// Builds a [`Document`], canonicalizing `terms` (sort + merge) and
/// deriving the content id.
pub fn document(
    dataset: impl Into<String>,
    title: impl Into<String>,
    entries: u64,
    terms: Vec<(String, f64)>,
) -> Document {
    let dataset = dataset.into();
    let title = title.into();
    let mut canonical: BTreeMap<String, f64> = BTreeMap::new();
    for (t, w) in terms {
        *canonical.entry(t).or_insert(0.0) += w;
    }
    let terms: Vec<(String, f64)> = canonical.into_iter().collect();
    let id = content_id(&dataset, &title, entries, &terms);
    Document { id, dataset, title, entries, terms }
}

/// The content address: dual-FNV fingerprint over the domain tag, the
/// dataset, the title, the entry count, and every `(term, weight)` in
/// canonical order (weights by bit pattern, strings length-prefixed).
fn content_id(dataset: &str, title: &str, entries: u64, terms: &[(String, f64)]) -> String {
    let mut h = FingerprintHasher::new();
    h.write_str(DOC_DOMAIN);
    h.write_str(dataset);
    h.write_str(title);
    h.write_u64(entries);
    h.write_u64(terms.len() as u64);
    for (t, w) in terms {
        h.write_str(t);
        h.write_f64(*w);
    }
    h.finish().to_string()
}

/// Parses a free-text query into terms. Whitespace-separated tokens
/// containing `:` are taken verbatim (`group:month`); bare tokens
/// expand across the name-carrying namespaces so `q=cases` matches a
/// measure, an attribute, or a value by that name.
pub fn parse_query(q: &str) -> Vec<(String, f64)> {
    let mut sig = SignatureBuilder::new();
    for token in q.split_whitespace() {
        if token.contains(':') {
            sig.add_term(token, 1.0);
        } else {
            for ns in ["group", "select", "val", "measure"] {
                sig.add_term(format!("{ns}:{token}"), 1.0);
            }
        }
    }
    sig.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_step_at_each_extra_nine() {
        assert_eq!(significance_bucket(0.50), 0);
        assert_eq!(significance_bucket(0.95), 1);
        assert_eq!(significance_bucket(0.991), 2);
        assert_eq!(significance_bucket(0.9995), 3);
    }

    #[test]
    fn builder_accumulates_and_sorts() {
        let mut sig = SignatureBuilder::new();
        sig.add_comparison("month", "region", "south", "north", "cases", "avg");
        sig.add_comparison("month", "region", "south", "east", "cases", "avg");
        sig.add_insight(InsightType::MeanGreater, 0.992);
        let terms = sig.finish();
        let weight =
            |t: &str| terms.iter().find(|(name, _)| name == t).map(|(_, w)| *w).unwrap_or(0.0);
        assert_eq!(weight("group:month"), 2.0);
        assert_eq!(weight("val:south"), 2.0);
        assert_eq!(weight("val:north"), 1.0);
        assert_eq!(weight("pair:south|north"), 1.0);
        assert_eq!(weight("type:mean_greater"), 1.0);
        assert_eq!(weight("sig:2"), 1.0);
        let mut sorted = terms.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(terms, sorted, "finish() must return canonical order");
    }

    #[test]
    fn document_ids_are_content_addressed() {
        let terms = vec![("group:month".to_string(), 2.0), ("measure:cases".to_string(), 1.0)];
        let a = document("covid", "Notebook", 3, terms.clone());
        // Same content, different input order: same id.
        let b = document("covid", "Notebook", 3, terms.iter().rev().cloned().collect());
        assert_eq!(a.id, b.id);
        assert_eq!(a, b);
        assert_eq!(a.id.len(), 32);
        assert!(a.id.bytes().all(|c| c.is_ascii_hexdigit()));
        // Any content change moves the id.
        let c = document("covid", "Notebook", 4, terms.clone());
        let d = document("other", "Notebook", 3, terms.clone());
        let e = document("covid", "Notebook", 3, vec![("group:month".to_string(), 3.0)]);
        assert_ne!(a.id, c.id);
        assert_ne!(a.id, d.id);
        assert_ne!(a.id, e.id);
    }

    #[test]
    fn duplicate_terms_merge_into_one_weight() {
        let doc =
            document("d", "t", 1, vec![("val:x".to_string(), 1.0), ("val:x".to_string(), 2.0)]);
        assert_eq!(doc.terms, vec![("val:x".to_string(), 3.0)]);
    }

    #[test]
    fn free_text_queries_expand_bare_tokens() {
        let terms = parse_query("cases group:month");
        let names: Vec<&str> = terms.iter().map(|(t, _)| t.as_str()).collect();
        assert!(names.contains(&"measure:cases"));
        assert!(names.contains(&"val:cases"));
        assert!(names.contains(&"group:month"));
        assert!(parse_query("   ").is_empty());
    }
}
