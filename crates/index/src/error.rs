//! The failure taxonomy of the index: every way an index file can be
//! missing, stale, or damaged is a typed variant, mirroring
//! `cn_store::StoreError` — the serving layer's contract is "fall back
//! to a cold rebuild, never panic".

use std::error::Error;
use std::fmt;

/// Why an index operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Filesystem failure (open/read/write/rename).
    Io {
        /// Path involved.
        path: String,
        /// The OS error, stringified.
        message: String,
    },
    /// The file does not start with the `CNIDX` magic — not an index
    /// file at all.
    BadMagic,
    /// The index was written by an incompatible format version.
    Version {
        /// Version found in the envelope.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The envelope is truncated or its checksum does not match — the
    /// bytes on disk are damaged.
    Corrupt(String),
    /// The payload parsed but violates the index invariants (duplicate
    /// document id, negative term weight, malformed fingerprint).
    Invalid(String),
    /// No index file exists at this path.
    NotFound(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io { path, message } => write!(f, "index I/O error on {path}: {message}"),
            IndexError::BadMagic => write!(f, "not a cn-index file (bad magic)"),
            IndexError::Version { found, supported } => {
                write!(f, "index format version {found} unsupported (this build reads {supported})")
            }
            IndexError::Corrupt(what) => write!(f, "corrupt index: {what}"),
            IndexError::Invalid(what) => write!(f, "invalid index: {what}"),
            IndexError::NotFound(path) => write!(f, "no index file at `{path}`"),
        }
    }
}

impl Error for IndexError {}

/// Same retry discipline as the store: only filesystem failures are
/// transient; deterministic damage must fall through to quarantine and
/// a cold rebuild instead of burning backoff budget.
impl cn_fault::Retryable for IndexError {
    fn retryable(&self) -> bool {
        matches!(self, IndexError::Io { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_io_is_retryable() {
        use cn_fault::Retryable;
        assert!(IndexError::Io { path: "x".into(), message: "eio".into() }.retryable());
        assert!(!IndexError::BadMagic.retryable());
        assert!(!IndexError::Corrupt("checksum".into()).retryable());
        assert!(!IndexError::NotFound("p".into()).retryable());
        assert!(!IndexError::Version { found: 9, supported: 1 }.retryable());
        assert!(!IndexError::Invalid("bad".into()).retryable());
    }

    #[test]
    fn display_names_the_problem() {
        let e = IndexError::Version { found: 9, supported: 1 };
        assert!(e.to_string().contains('9') && e.to_string().contains('1'));
        assert!(IndexError::NotFound("a/b.cnidx".into()).to_string().contains("a/b.cnidx"));
        assert!(IndexError::Corrupt("checksum".into()).to_string().contains("checksum"));
    }
}
