//! Acceptance tests for the ranking kernel: top-k search over 100+
//! indexed notebooks returns **identical** rankings (ids and score
//! bits) across 1/4/8 scoring threads and across a save/load of the
//! CNIDX file.

use cn_index::{document, load, parse_query, save, Hit, Index, ScoreKind};
use proptest::prelude::*;
use std::path::PathBuf;

/// A deterministic synthetic corpus shaped like real notebook
/// signatures: overlapping group/measure/value terms with repeating
/// weights so score ties actually occur.
fn corpus(n: usize) -> Index {
    let mut ix = Index::new();
    for i in 0..n {
        let doc = document(
            format!("dataset{}", i % 7),
            format!("Notebook {i}"),
            (i % 9 + 1) as u64,
            vec![
                (format!("group:g{}", i % 11), 1.0 + (i % 4) as f64 * 0.5),
                (format!("select:s{}", i % 5), 1.0),
                (format!("val:v{}", i % 13), 1.0),
                (format!("val:v{}", (i + 3) % 13), 1.0),
                (format!("pair:v{}|v{}", i % 13, (i + 3) % 13), 1.0),
                (format!("measure:m{}", i % 6), 2.0),
                ("agg:avg".to_string(), 1.0),
                (format!("sig:{}", i % 4), 1.0 + (i % 2) as f64),
            ],
        );
        assert!(ix.insert(doc), "synthetic corpus must not collide");
    }
    ix
}

fn bits(hits: &[Hit]) -> Vec<(String, u64)> {
    hits.iter().map(|h| (h.id.clone(), h.score.to_bits())).collect()
}

#[test]
fn ranking_is_identical_across_thread_counts_and_save_load() {
    let ix = corpus(120);
    assert!(ix.len() >= 100, "acceptance requires 100+ indexed notebooks");

    let path = {
        let dir = std::env::temp_dir().join(format!("cn-index-ranking-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("corpus.cnidx")
    };
    save(&ix, &path).unwrap();
    let reloaded = load(&path).unwrap();
    assert_eq!(reloaded.len(), ix.len());

    let queries = [
        parse_query("group:g3 measure:m2 val:v5"),
        parse_query("v5 avg"),
        vec![("measure:m0".to_string(), 2.0), ("sig:1".to_string(), 1.0)],
        vec![("group:g1".to_string(), 0.25)],
    ];
    for (qi, query) in queries.iter().enumerate() {
        for kind in [ScoreKind::Cosine, ScoreKind::Jaccard] {
            let base = ix.search(query, 15, kind, 1);
            assert!(!base.is_empty(), "query {qi} should match the corpus");
            for threads in [4, 8] {
                let multi = ix.search(query, 15, kind, threads);
                assert_eq!(
                    bits(&base),
                    bits(&multi),
                    "query {qi} {kind:?}: {threads}-thread ranking diverged"
                );
            }
            let replayed = reloaded.search(query, 15, kind, 8);
            assert_eq!(
                bits(&base),
                bits(&replayed),
                "query {qi} {kind:?}: ranking diverged after save/load"
            );
        }
    }
    let _ = std::fs::remove_dir_all(path.parent().map(PathBuf::from).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any corpus size, query shape, and thread count: the ranking and
    /// every score bit match the single-threaded result.
    #[test]
    fn search_is_thread_count_invariant(
        n in 20usize..140,
        k in 1usize..20,
        threads in 2usize..=8,
        g in 0usize..11,
        m in 0usize..6,
        w in 1u32..8,
    ) {
        let ix = corpus(n);
        let query = vec![
            (format!("group:g{g}"), f64::from(w)),
            (format!("measure:m{m}"), 1.5),
        ];
        for kind in [ScoreKind::Cosine, ScoreKind::Jaccard] {
            let base = ix.search(&query, k, kind, 1);
            let multi = ix.search(&query, k, kind, threads);
            prop_assert_eq!(bits(&base), bits(&multi));
        }
    }
}
