//! The paper's running example (Figures 2–3): comparison and hypothesis
//! queries over a Covid-like dataset.
//!
//! ```bash
//! cargo run -p cn-core --release --example covid_analysis
//! ```

use cn_core::engine::comparison::execute;
use cn_core::engine::{AggFn, ComparisonSpec};
use cn_core::insight::types::{Insight, InsightType};
use cn_core::notebook::sql::{comparison_sql, comparison_sql_unpivoted, hypothesis_sql};
use cn_core::stats::{two_sample_pvalue, TestKind};

fn main() {
    let table = cn_core::datagen::covid_like(42);
    let schema = table.schema();
    let continent = schema.attribute("continent").unwrap();
    let month = schema.attribute("month").unwrap();
    let cases = schema.measure("cases").unwrap();

    // The Figure 2 comparison: cases by continent, month_3 vs month_4.
    let m3 = table.dict(month).code("month_3").unwrap();
    let m4 = table.dict(month).code("month_4").unwrap();
    let spec = ComparisonSpec {
        group_by: continent,
        select_on: month,
        val: m3,
        val2: m4,
        measure: cases,
        agg: AggFn::Sum,
    };

    println!("=== Comparison query (Definition 3.1 algebra) ===\n");
    println!("{}\n", cn_core::engine::algebra::comparison_algebra(&table, &spec));
    println!("=== Comparison query (Figure 2 join form) ===\n");
    println!("{}\n", comparison_sql(&table, &spec));
    println!("=== Join-free form (Section 3.1) ===\n");
    println!("{}\n", comparison_sql_unpivoted(&table, &spec));

    let result = execute(&table, &spec);
    println!(
        "=== Result ({} groups, {} tuples aggregated) ===\n",
        result.n_groups(),
        result.tuples_aggregated
    );
    let dict = table.dict(continent);
    println!("{:<14} {:>14} {:>14}", "continent", "month_3", "month_4");
    for (i, &c) in result.group_codes.iter().enumerate() {
        println!("{:<14} {:>14.0} {:>14.0}", dict.decode(c), result.left[i], result.right[i]);
    }

    // Which direction does the data support?
    let mean3: f64 = result.left.iter().sum::<f64>() / result.left.len() as f64;
    let mean4: f64 = result.right.iter().sum::<f64>() / result.right.len() as f64;
    let (hi, lo) = if mean3 > mean4 { (m3, m4) } else { (m4, m3) };
    let insight = Insight {
        measure: cases,
        select_on: month,
        val: hi,
        val2: lo,
        kind: InsightType::MeanGreater,
    };
    println!("\n=== Insight ===\n\n{}\n", insight.describe(&table));
    println!("=== Hypothesis query (Figure 3) ===\n");
    println!("{}\n", hypothesis_sql(&table, &spec, &insight));

    // Significance by permutation test over the base relation.
    let x = cn_core::engine::comparison::measure_slice(&table, month, hi, cases);
    let y = cn_core::engine::comparison::measure_slice(&table, month, lo, cases);
    let p = two_sample_pvalue(&x, &y, TestKind::MeanDiff, 999, 7);
    println!(
        "Permutation test (999 permutations): p = {:.4} -> sig(i) = {:.4} -> {}",
        p,
        1.0 - p,
        if p <= 0.05 { "significant" } else { "NOT significant" }
    );
}
