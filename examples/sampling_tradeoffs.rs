//! Sampling strategies vs insight recovery (the Figure 6 experiment in
//! miniature): unbalanced sampling preserves minority values and therefore
//! recovers more insights at low rates than uniform random sampling.
//!
//! ```bash
//! cargo run -p cn-core --release --example sampling_tradeoffs
//! ```

use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::significance::TestConfig;
use cn_core::prelude::*;
use std::time::Instant;

fn config(sampling: SamplingStrategy) -> GeneratorConfig {
    GeneratorConfig {
        sampling,
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig { n_permutations: 199, seed: 9, ..Default::default() },
            ..Default::default()
        },
        n_threads: 8,
        ..Default::default()
    }
}

fn main() {
    let table = enedis_like(Scale { rows: 0.05, domains: 0.05 }, 11);
    println!("Dataset: {} rows\n", table.n_rows());

    let t0 = Instant::now();
    let reference = run(&table, &config(SamplingStrategy::None)).expect("pipeline run");
    let full_time = t0.elapsed();
    let reference_keys = reference.insight_keys();
    println!("no sampling: {} insights, {:.2}s\n", reference_keys.len(), full_time.as_secs_f64());

    println!("{:>8} {:>22} {:>22}", "sample", "unbalanced (found, s)", "random (found, s)");
    for fraction in [0.05, 0.1, 0.2, 0.4] {
        let t0 = Instant::now();
        let unb =
            run(&table, &config(SamplingStrategy::Unbalanced { fraction })).expect("pipeline run");
        let unb_time = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let rnd =
            run(&table, &config(SamplingStrategy::Random { fraction })).expect("pipeline run");
        let rnd_time = t0.elapsed().as_secs_f64();
        let pct = |r: &RunResult| {
            100.0 * r.insight_keys().intersection(&reference_keys).count() as f64
                / reference_keys.len().max(1) as f64
        };
        println!(
            "{:>7.0}% {:>14.1}% {:>5.2}s {:>14.1}% {:>5.2}s",
            fraction * 100.0,
            pct(&unb),
            unb_time,
            pct(&rnd),
            rnd_time
        );
    }
}
