//! The paper's Section 7 extension recipe, implemented: a third insight
//! type (*extreme greater*, `max(val) > max(val')`) flows through the
//! whole pipeline — hypothesis SQL, permutation test, interestingness,
//! TAP — with no change to the framework.
//!
//! ```bash
//! cargo run -p cn-core --release --example extended_insights
//! ```

use cn_core::insight::significance::TestConfig;
use cn_core::insight::types::InsightType;
use cn_core::prelude::*;

fn main() {
    let table =
        cn_core::datagen::enedis_like(cn_core::datagen::Scale { rows: 0.05, domains: 0.05 }, 19);
    println!("dataset `{}`: {} rows\n", table.name(), table.n_rows());

    let mut config = GeneratorConfig {
        budgets: Budgets { epsilon_t: 8.0, epsilon_d: 60.0 },
        n_threads: 4,
        ..Default::default()
    };
    config.generation_config.test = TestConfig {
        n_permutations: 199,
        seed: 7,
        types: InsightType::EXTENDED.to_vec(),
        ..Default::default()
    };

    let result = run(&table, &config).expect("pipeline run");
    println!(
        "tested {} (3 insight types), {} significant, {} retained",
        result.n_tested,
        result.n_significant,
        result.insights.len()
    );
    let mut by_kind = std::collections::BTreeMap::new();
    for s in &result.insights {
        *by_kind.entry(s.detail.insight.kind.name()).or_insert(0usize) += 1;
    }
    for (kind, count) in by_kind {
        println!("  {kind:<18} {count}");
    }

    // Show one extreme-greater hypothesis query if present.
    if let Some(q) = result.queries.iter().find(|q| {
        q.insight_ids
            .iter()
            .any(|&id| result.insights[id].detail.insight.kind == InsightType::ExtremeGreater)
    }) {
        let id = *q
            .insight_ids
            .iter()
            .find(|&&id| result.insights[id].detail.insight.kind == InsightType::ExtremeGreater)
            .unwrap();
        let insight = result.insights[id].detail.insight;
        println!("\nexample extreme-greater insight: {}", insight.describe(&table));
        println!("\n{}", cn_core::notebook::sql::hypothesis_sql(&table, &q.spec, &insight));
    }

    println!("\nnotebook of {} queries generated.", result.notebook.len());
}
