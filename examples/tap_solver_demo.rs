//! The Traveling Analyst Problem in isolation: exact branch-and-bound vs
//! Algorithm 3 vs the top-k baseline on artificial instances
//! (the Section 6.2 / 6.4 setting).
//!
//! ```bash
//! cargo run -p cn-core --release --example tap_solver_demo
//! ```

use cn_core::tap::baseline::solve_baseline;
use cn_core::tap::eval::{deviation_percent, recall};
use cn_core::tap::{
    generate_instance, solve_exact, solve_heuristic, Budgets, ExactConfig, InstanceConfig,
};
use std::time::Duration;

fn main() {
    let budgets = Budgets { epsilon_t: 12.0, epsilon_d: 0.7 };
    println!(
        "TAP with ε_t = {}, ε_d = {} over Euclidean instances (cost ~ U(0.5, 1.5))\n",
        budgets.epsilon_t, budgets.epsilon_d
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10}",
        "n", "exact z", "algo3 z", "base z", "dev %", "recall", "nodes", "time"
    );
    for n in [20, 40, 60, 80, 100] {
        let instance = generate_instance(&InstanceConfig::euclidean(n, 42));
        let exact = solve_exact(
            &instance,
            &budgets,
            &ExactConfig { timeout: Duration::from_secs(20), ..Default::default() },
        );
        let heur = solve_heuristic(&instance, &budgets);
        let base = solve_baseline(&instance, &budgets);
        println!(
            "{:>5} {:>10.3} {:>10.3} {:>10.3} {:>8.2} {:>8.2} {:>9} {:>9.2}s{}",
            n,
            exact.solution.total_interest,
            heur.total_interest,
            base.total_interest,
            deviation_percent(&exact.solution, &heur),
            recall(&exact.solution, &heur),
            exact.nodes_explored,
            exact.elapsed.as_secs_f64(),
            if exact.timed_out { " (timeout)" } else { "" }
        );
    }
    println!(
        "\nNote: the baseline ignores ε_d entirely — its sequences typically violate\n\
         the distance bound the other two respect."
    );
}
