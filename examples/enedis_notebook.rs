//! Full pipeline on the ENEDIS-shaped dataset: the WSC-unb-approx
//! generator of Table 3, with notebook artifacts written to
//! `target/examples/`.
//!
//! ```bash
//! cargo run -p cn-core --release --example enedis_notebook
//! ```

use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::significance::TestConfig;
use cn_core::notebook::{to_ipynb_json, to_sql_script};
use cn_core::prelude::*;
use std::time::Duration;

fn main() {
    let table = enedis_like(Scale { rows: 0.05, domains: 0.05 }, 7);
    println!(
        "Dataset `{}`: {} rows, {} attributes, {} measures",
        table.name(),
        table.n_rows(),
        table.schema().n_attributes(),
        table.schema().n_measures()
    );

    let base = GeneratorConfig {
        budgets: Budgets { epsilon_t: 10.0, epsilon_d: 60.0 },
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig { n_permutations: 199, seed: 3, ..Default::default() },
            ..Default::default()
        },
        n_threads: 8,
        ..Default::default()
    };
    let config = GeneratorKind::WscUnbApprox.configure(base, 0.2, Duration::from_secs(30));
    let result = run(&table, &config).expect("pipeline run");

    println!("\n--- Phase breakdown ---");
    for (phase, secs) in result.timings.rows() {
        println!("{phase:<18} {secs:>9.3}s");
    }
    println!(
        "\nInsights: {} tested, {} significant, {} retained; queries: {} -> {} after dedup",
        result.n_tested,
        result.n_significant,
        result.insights.len(),
        result.n_queries_before_dedup,
        result.queries.len()
    );
    println!(
        "Notebook: {} queries, interest {:.3}, distance {:.1}",
        result.notebook.len(),
        result.solution.total_interest,
        result.solution.total_distance
    );

    let dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(dir).expect("create output dir");
    let ipynb = serde_json::to_string_pretty(&to_ipynb_json(&result.notebook)).unwrap();
    std::fs::write(dir.join("enedis_notebook.ipynb"), ipynb).expect("write ipynb");
    std::fs::write(dir.join("enedis_notebook.sql"), to_sql_script(&result.notebook))
        .expect("write sql");
    println!("\nWrote target/examples/enedis_notebook.ipynb and .sql");

    for (i, entry) in result.notebook.entries.iter().enumerate().take(3) {
        println!("\n--- Entry {} ---", i + 1);
        for note in &entry.insights {
            println!(
                "insight: {} (sig {:.3}, credibility {}/{})",
                note.description, note.significance, note.credibility, note.possible
            );
        }
    }
}
