//! Quickstart: from a CSV to a comparison notebook in a few lines.
//!
//! ```bash
//! cargo run -p cn-core --release --example quickstart
//! ```

use cn_core::prelude::*;

/// Builds the demo CSV: a shop dataset with a planted *Simpson-style*
/// insight — `south` has the highest average sales overall, yet its store
/// channel loses money, so the insight "south sales greater" is supported
/// when grouping by quarter but rejected when grouping by channel. That
/// partial credibility is exactly what the interestingness of
/// Definition 4.3 rewards.
fn demo_csv() -> String {
    let mut out = String::from("region,channel,quarter,sales,units\n");
    let mut state = 9u64;
    let mut noise = move || {
        // xorshift, scaled to [0, 4).
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 4000) as f64 / 1000.0
    };
    for i in 0..600usize {
        let region = ["south", "north", "west", "east"][i % 4];
        let channel = if region == "south" {
            if i % 40 == 0 {
                "store"
            } else {
                "web"
            }
        } else {
            ["web", "store"][(i / 4) % 2]
        };
        let quarter = ["Q1", "Q2", "Q3"][(i / 8) % 3];
        let sales = match (region, channel) {
            ("south", "web") => 25.0,
            ("south", "store") => -14.0,
            ("north", _) => 10.0,
            ("west", _) => 10.5,
            _ => 11.0,
        } + noise();
        let units = if channel == "web" { 30.0 } else { 5.0 }
            + if quarter == "Q2" { 9.0 } else { 0.0 }
            + noise() / 4.0;
        out.push_str(&format!("{region},{channel},{quarter},{sales:.2},{units:.2}\n"));
    }
    out
}

fn main() {
    // 1. Load the dataset. The user only distinguishes measures from
    //    categorical attributes (or lets inference decide).
    let options =
        CsvOptions { measures: Some(vec!["sales".into(), "units".into()]), ..Default::default() };
    let table = read_str("shop", &demo_csv(), &options).expect("valid CSV");
    println!(
        "Loaded `{}`: {} rows, {} categorical attributes, {} measures\n",
        table.name(),
        table.n_rows(),
        table.schema().n_attributes(),
        table.schema().n_measures()
    );

    // 2. Generate a comparison notebook.
    let opts = NotebookOptions { notebook_len: 5, n_permutations: 199, ..Default::default() };
    let result = cn_core::generate_notebook(&table, &opts).expect("pipeline run");

    println!(
        "Tested {} candidate insights, {} significant, {} comparison queries generated.",
        result.n_tested,
        result.n_significant,
        result.queries.len()
    );
    println!(
        "Notebook: {} queries, total interestingness {:.3}, total distance {:.1}\n",
        result.notebook.len(),
        result.solution.total_interest,
        result.solution.total_distance
    );

    // 3. Render it.
    println!("{}", to_markdown(&result.notebook));
}
