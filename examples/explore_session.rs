//! An interactive-exploration round: generate a starting notebook, pick an
//! anchor entry, get continuation suggestions, and execute the suggested
//! SQL through the bundled dialect executor.
//!
//! ```bash
//! cargo run -p cn-core --release --example explore_session
//! ```

use cn_core::interest::DistanceWeights;
use cn_core::pipeline::{continue_notebook, suggest_continuations};
use cn_core::sqlrun::run_sql;

fn main() {
    let table =
        cn_core::datagen::enedis_like(cn_core::datagen::Scale { rows: 0.05, domains: 0.05 }, 23);
    println!("dataset `{}`: {} rows\n", table.name(), table.n_rows());

    // 1. The starting notebook (the paper's "entry point" artifact).
    let run_result = cn_core::generate_notebook(
        &table,
        &cn_core::NotebookOptions { notebook_len: 5, n_permutations: 199, ..Default::default() },
    );
    println!("starting notebook: {} comparison queries", run_result.notebook.len());
    for (i, e) in run_result.notebook.entries.iter().enumerate() {
        println!(
            "  {}. {}",
            i + 1,
            e.insights.first().map(|n| n.description.as_str()).unwrap_or("(no insight)")
        );
    }

    // 2. The analyst likes entry 1 — what next?
    let weights = DistanceWeights::default();
    let suggestions = suggest_continuations(&run_result, 0, 3, &weights);
    println!("\ncontinuations of entry 1:");
    for s in &suggestions {
        let q = &run_result.queries[s.query];
        println!(
            "  score {:.3} (interest {:.3}, distance {:.1}): group {} by {}",
            s.score,
            s.interest,
            s.distance,
            table.schema().attribute_name(q.spec.select_on),
            table.schema().attribute_name(q.spec.group_by),
        );
    }

    // 3. Materialize the continuation notebook and *execute* its first SQL
    //    cell with the bundled executor.
    let continuation = continue_notebook(&table, &run_result, 0, 3, &weights);
    if let Some(entry) = continuation.entries.first() {
        println!("\nfirst continuation query:\n\n{}\n", entry.sql);
        let result = run_sql(&entry.sql, &table).expect("notebook SQL is executable");
        println!("{}", result.columns.join(" | "));
        for row in result.rows.iter().take(6) {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    cn_core::sqlrun::Value::Str(s) => s.clone(),
                    cn_core::sqlrun::Value::Num(n) => format!("{n:.2}"),
                    cn_core::sqlrun::Value::Null => "NULL".into(),
                })
                .collect();
            println!("{}", cells.join(" | "));
        }
        println!("({} rows)", result.rows.len());
    }
}
