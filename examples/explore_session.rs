//! An interactive-exploration round: generate a starting notebook, open an
//! [`ExplorationSession`] over the run artifact, pick an anchor entry, get
//! continuation suggestions (served from the session's distance cache),
//! and execute the suggested SQL through the bundled dialect executor.
//!
//! ```bash
//! cargo run -p cn-core --release --example explore_session
//! ```

use cn_core::interest::DistanceWeights;
use cn_core::pipeline::ExplorationSession;
use cn_core::sqlrun::run_sql;
use std::sync::Arc;

fn main() {
    let table =
        cn_core::datagen::enedis_like(cn_core::datagen::Scale { rows: 0.05, domains: 0.05 }, 23);
    println!("dataset `{}`: {} rows\n", table.name(), table.n_rows());

    // 1. The starting notebook (the paper's "entry point" artifact),
    //    instrumented so the session's cache behavior is visible below.
    let registry = Arc::new(cn_core::obs::Registry::new());
    let run_result = cn_core::generate_notebook_observed(
        &table,
        &cn_core::NotebookOptions { notebook_len: 5, n_permutations: 199, ..Default::default() },
        &registry,
    )
    .expect("pipeline run");
    println!("starting notebook: {} comparison queries", run_result.notebook.len());
    for (i, e) in run_result.notebook.entries.iter().enumerate() {
        println!(
            "  {}. {}",
            i + 1,
            e.insights.first().map(|n| n.description.as_str()).unwrap_or("(no insight)")
        );
    }

    // 2. Open a session over the finished run. The session keeps the
    //    batched kernel results (queries, insights, interest scores) and
    //    memoizes per-anchor distance rows across calls.
    let session = ExplorationSession::with_registry(
        run_result,
        DistanceWeights::default(),
        Arc::clone(&registry),
    );

    // 3. The analyst likes entry 1 — what next?
    let suggestions = session.suggest(0, 3).expect("anchor in range");
    println!("\ncontinuations of entry 1:");
    for s in &suggestions {
        let q = &session.run().queries[s.query];
        println!(
            "  score {:.3} (interest {:.3}, distance {:.1}): group {} by {}",
            s.score,
            s.interest,
            s.distance,
            table.schema().attribute_name(q.spec.select_on),
            table.schema().attribute_name(q.spec.group_by),
        );
    }

    // 4. Materialize the continuation notebook — the second call on the
    //    same anchor hits the distance cache — and *execute* its first SQL
    //    cell with the bundled executor.
    let continuation = session.continue_notebook(&table, 0, 3).expect("anchor in range");
    if let Some(entry) = continuation.entries.first() {
        println!("\nfirst continuation query:\n\n{}\n", entry.sql);
        let result = run_sql(&entry.sql, &table).expect("notebook SQL is executable");
        println!("{}", result.columns.join(" | "));
        for row in result.rows.iter().take(6) {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    cn_core::sqlrun::Value::Str(s) => s.clone(),
                    cn_core::sqlrun::Value::Num(n) => format!("{n:.2}"),
                    cn_core::sqlrun::Value::Null => "NULL".into(),
                })
                .collect();
            println!("{}", cells.join(" | "));
        }
        println!("({} rows)", result.rows.len());
    }

    // 5. The registry saw the whole exploration: phase spans from the
    //    generation run plus the session's serving counters.
    let report = registry.report();
    println!(
        "\nobservability: {} suggestions served, {} distance-cache hit(s)",
        report.counter("suggestions_served"),
        report.counter("distance_cache_hits"),
    );
}
