//! End-to-end integration tests over the whole workspace: every Table 3
//! generator variant must produce a valid, budget-respecting notebook on a
//! seeded synthetic dataset, recover the planted insight structure, and be
//! reproducible.

use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::significance::TestConfig;
use cn_core::prelude::*;
use std::time::Duration;

fn base_config() -> GeneratorConfig {
    GeneratorConfig {
        budgets: Budgets { epsilon_t: 6.0, epsilon_d: 40.0 },
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig { n_permutations: 199, seed: 5, ..Default::default() },
            ..Default::default()
        },
        n_threads: 4,
        ..Default::default()
    }
}

fn dataset() -> Table {
    enedis_like(Scale::TEST, 13)
}

#[test]
fn every_table3_variant_produces_a_valid_notebook() {
    let t = dataset();
    for kind in GeneratorKind::TABLE3 {
        let cfg = kind.configure(base_config(), 0.4, Duration::from_secs(15));
        let r = run(&t, &cfg).expect("pipeline run");
        assert!(r.n_tested > 0, "{}", kind.name());
        assert!(!r.notebook.is_empty(), "{} produced an empty notebook", kind.name());
        assert!(r.notebook.len() <= 6, "{}", kind.name());
        assert!(r.solution.total_distance <= 40.0 + 1e-9, "{} violates ε_d", kind.name());
        assert!(r.solution.total_cost <= 6.0 + 1e-9, "{} violates ε_t", kind.name());
        // Every notebook entry's insights reference the query's site.
        for e in &r.notebook.entries {
            assert!(!e.insights.is_empty(), "{}", kind.name());
            assert!(e.sql.contains("group by"), "{}", kind.name());
        }
    }
}

#[test]
fn runs_are_reproducible() {
    let t = dataset();
    let cfg = base_config();
    let a = run(&t, &cfg).expect("pipeline run");
    let b = run(&t, &cfg).expect("pipeline run");
    assert_eq!(a.n_significant, b.n_significant);
    assert_eq!(a.solution.sequence, b.solution.sequence);
    assert_eq!(a.notebook.len(), b.notebook.len());
    let sa = serde_json::to_string(&to_ipynb_json(&a.notebook)).unwrap();
    let sb = serde_json::to_string(&to_ipynb_json(&b.notebook)).unwrap();
    assert_eq!(sa, sb, "rendered artifacts must be byte-identical");
}

#[test]
fn fd_exclusion_prevents_meaningless_queries() {
    // enedis_like plants department → dep_zone; grouping by dep_zone while
    // selecting departments is meaningless and must not appear.
    let t = dataset();
    let dep = t.schema().attribute("department").unwrap();
    let zone = t.schema().attribute("dep_zone").unwrap();
    let r = run(&t, &base_config()).expect("pipeline run");
    for q in &r.queries {
        assert!(
            !(q.spec.group_by == zone && q.spec.select_on == dep),
            "FD-meaningless query generated: {:?}",
            q.spec
        );
    }
}

#[test]
fn queries_support_their_insights_against_the_base_table() {
    let t = dataset();
    let r = run(&t, &base_config()).expect("pipeline run");
    assert!(!r.queries.is_empty());
    for q in &r.queries {
        let result = cn_core::engine::comparison::execute(&t, &q.spec);
        for &id in &q.insight_ids {
            let ins = &r.insights[id].detail.insight;
            assert!(
                cn_core::insight::hypothesis::insight_supported(ins, &q.spec, &result),
                "query {:?} listed as supporting {:?} but does not",
                q.spec,
                ins
            );
        }
    }
}

#[test]
fn interestingness_components_order_consistently() {
    // SigOnly scores dominate SigCred scores query-by-query (the surprise
    // factor is ≤ 1), and Full ≤ SigCred (conciseness ≤ 1).
    let t = dataset();
    let r = run(&t, &base_config()).expect("pipeline run");
    let sig_only = InterestParams { components: InterestComponents::SigOnly, ..Default::default() };
    let sig_cred = InterestParams { components: InterestComponents::SigCred, ..Default::default() };
    let full = InterestParams::default();
    for q in &r.queries {
        let a = cn_core::interest::interestingness(q, &r.insights, &sig_only);
        let b = cn_core::interest::interestingness(q, &r.insights, &sig_cred);
        let c = cn_core::interest::interestingness(q, &r.insights, &full);
        assert!(a >= b - 1e-12, "sig-only must dominate sig-cred");
        assert!(b >= c - 1e-12, "sig-cred must dominate full");
    }
}

#[test]
fn notebook_len_tracks_epsilon_t() {
    let t = dataset();
    let mut sizes = Vec::new();
    for budget in [2.0, 4.0, 6.0] {
        let mut cfg = base_config();
        cfg.budgets.epsilon_t = budget;
        let r = run(&t, &cfg).expect("pipeline run");
        assert!(r.notebook.len() as f64 <= budget + 1e-9);
        sizes.push(r.notebook.len());
    }
    assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2]);
}

#[test]
fn bundled_sample_dataset_flows_end_to_end() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data/covid_sample.csv");
    let options =
        CsvOptions { measures: Some(vec!["cases".into(), "deaths".into()]), ..Default::default() };
    let table = read_path(&path, &options).expect("bundled CSV loads");
    assert_eq!(table.n_rows(), 400);
    assert_eq!(table.schema().n_attributes(), 3);
    let result = cn_core::generate_notebook(
        &table,
        &cn_core::NotebookOptions {
            notebook_len: 3,
            n_permutations: 99,
            n_threads: 2,
            ..Default::default()
        },
    )
    .expect("pipeline run");
    assert!(result.n_tested > 0);
    // Every rendered SQL cell executes via the bundled dialect runner.
    for entry in &result.notebook.entries {
        cn_core::sqlrun::run_sql(&entry.sql, &table).expect("notebook SQL executes");
    }
}
