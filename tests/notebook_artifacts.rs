//! Artifact-level integration tests: the rendered `.ipynb` must be valid
//! nbformat JSON, the SQL must be faithful to the executed plans, and the
//! previews must match real query results.

use cn_core::datagen::covid_like;
use cn_core::insight::significance::TestConfig;
use cn_core::insight::types::InsightType;
use cn_core::prelude::*;

fn sample_run() -> (Table, RunResult) {
    let t = covid_like(21);
    let cfg = GeneratorConfig {
        budgets: Budgets { epsilon_t: 5.0, epsilon_d: 50.0 },
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig { n_permutations: 199, seed: 2, ..Default::default() },
            ..Default::default()
        },
        n_threads: 4,
        ..Default::default()
    };
    let r = run(&t, &cfg).expect("pipeline run");
    (t, r)
}

#[test]
fn ipynb_structure_is_valid_nbformat() {
    let (_, r) = sample_run();
    assert!(!r.notebook.is_empty());
    let v = to_ipynb_json(&r.notebook);
    assert_eq!(v["nbformat"], 4);
    assert!(v["nbformat_minor"].as_i64().unwrap() >= 4);
    let cells = v["cells"].as_array().unwrap();
    assert_eq!(cells.len(), 1 + 2 * r.notebook.len());
    for (i, cell) in cells.iter().enumerate() {
        let kind = cell["cell_type"].as_str().unwrap();
        assert!(kind == "markdown" || kind == "code");
        assert!(cell["source"].is_array());
        if kind == "code" {
            assert!(cell["outputs"].is_array());
            assert!(cell["execution_count"].is_number(), "cell {i}");
        }
    }
    // Round-trip through text.
    let text = serde_json::to_string(&v).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(back, v);
}

#[test]
fn previews_match_direct_execution() {
    let (t, r) = sample_run();
    for (entry, &qi) in r.notebook.entries.iter().zip(r.solution.sequence.iter()) {
        let spec = r.queries[qi].spec;
        assert_eq!(entry.spec, spec);
        let res = cn_core::engine::comparison::execute(&t, &spec);
        assert!(entry.preview.len() <= res.n_groups());
        let dict = t.dict(spec.group_by);
        for (row, (name, l, rr)) in entry.preview.iter().enumerate() {
            assert_eq!(name, dict.decode(res.group_codes[row]));
            assert!((l - res.left[row]).abs() < 1e-9);
            assert!((rr - res.right[row]).abs() < 1e-9);
        }
    }
}

#[test]
fn sql_text_mentions_the_right_pieces() {
    let (t, r) = sample_run();
    for entry in &r.notebook.entries {
        let schema = t.schema();
        let a = schema.attribute_name(entry.spec.group_by);
        let b = schema.attribute_name(entry.spec.select_on);
        let m = schema.measure_name(entry.spec.measure);
        let v1 = t.dict(entry.spec.select_on).decode(entry.spec.val);
        let v2 = t.dict(entry.spec.select_on).decode(entry.spec.val2);
        for needle in [a, b, m, v1, v2] {
            assert!(entry.sql.contains(needle), "SQL misses {needle}: {}", entry.sql);
        }
        assert!(entry.sql.contains(entry.spec.agg.sql_name()));
        assert!(entry.sql.ends_with(';'));
    }
}

#[test]
fn markdown_and_sql_renderers_cover_all_entries() {
    let (_, r) = sample_run();
    let md = to_markdown(&r.notebook);
    let sql = to_sql_script(&r.notebook);
    for (i, entry) in r.notebook.entries.iter().enumerate() {
        assert!(md.contains(&format!("## Comparison {}", i + 1)));
        assert!(sql.contains(&format!("-- Comparison {}", i + 1)));
        for note in &entry.insights {
            assert!(md.contains(&note.description));
        }
    }
}

#[test]
fn hypothesis_sql_round_trips_insight_direction() {
    let (t, r) = sample_run();
    let q = &r.queries[r.solution.sequence[0]];
    for &id in &q.insight_ids {
        let ins = r.insights[id].detail.insight;
        let sql = cn_core::notebook::sql::hypothesis_sql(&t, &q.spec, &ins);
        assert!(sql.contains("as hypothesis"));
        assert!(sql.contains(ins.kind.name()));
        assert!(sql.contains("having"));
    }
}

/// The paper's literal Figure 2 numbers: continental April/May case sums
/// and Example 3.10's observed statistic avg(May) − avg(April) = 61346.4.
#[test]
fn figure_2_golden_numbers() {
    let schema = Schema::new(vec!["continent", "month"], vec!["cases"]).unwrap();
    let mut b = TableBuilder::new("covid", schema);
    for (cont, apr, may) in [
        ("Africa", 31598.0, 92626.0),
        ("America", 1104862.0, 1404912.0),
        ("Asia", 333821.0, 537584.0),
        ("Europe", 863874.0, 608110.0),
        ("Oceania", 2812.0, 467.0),
    ] {
        b.push_row(&[cont, "4"], &[apr]).unwrap();
        b.push_row(&[cont, "5"], &[may]).unwrap();
    }
    let t = b.finish();
    let month = t.schema().attribute("month").unwrap();
    let spec = cn_core::engine::ComparisonSpec {
        group_by: t.schema().attribute("continent").unwrap(),
        select_on: month,
        val: t.dict(month).code("4").unwrap(),
        val2: t.dict(month).code("5").unwrap(),
        measure: t.schema().measure("cases").unwrap(),
        agg: cn_core::engine::AggFn::Sum,
    };
    let result = cn_core::engine::comparison::execute(&t, &spec);
    // The exact Figure 2 rows, in continent order.
    assert_eq!(result.left, vec![31598.0, 1104862.0, 333821.0, 863874.0, 2812.0]);
    assert_eq!(result.right, vec![92626.0, 1404912.0, 537584.0, 608110.0, 467.0]);
    // Example 3.10: avg(May) − avg(April) = 61346.4 at the continent level.
    let avg_april: f64 = result.left.iter().sum::<f64>() / 5.0;
    let avg_may: f64 = result.right.iter().sum::<f64>() / 5.0;
    assert!((avg_may - avg_april - 61346.4).abs() < 1e-9);
    // The mean-greater insight toward May is supported (Figure 3's query
    // returns a row) and the rendered SQL executes to the same table.
    let insight = cn_core::insight::types::Insight {
        measure: spec.measure,
        select_on: month,
        val: spec.val2,
        val2: spec.val,
        kind: InsightType::MeanGreater,
    };
    let h = cn_core::insight::hypothesis::HypothesisQuery::new(
        insight,
        spec.group_by,
        cn_core::engine::AggFn::Sum,
    );
    assert!(h.evaluate(&t));
    let hyp_sql = cn_core::notebook::sql::hypothesis_sql(&t, &h.spec, &insight);
    let rows = cn_core::sqlrun::run_sql(&hyp_sql, &t).unwrap();
    assert_eq!(rows.rows.len(), 1, "Figure 3's hypothesis query returns one row");
}
