//! Golden warm-start tests: `run_from_store` must be **bit-identical**
//! to a cold `run` for the same `(table, config)`, across configs that
//! exercise every Phase 0–2 path (full-table, shared-sample, unbalanced
//! per-attribute sample, pruning on/off), and the prefix fingerprint
//! must move exactly when a Phase 0–2 input moves.

use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::significance::TestConfig;
use cn_core::notebook::to_markdown;
use cn_core::pipeline::store::{build_store_artifact, prefix_fingerprint, run_from_store};
use cn_core::pipeline::{run, GeneratorConfig, PipelineError, RunResult, SamplingStrategy};
use cn_core::store::Store;
use cn_core::tabular::{AttrId, Table};
use cn_core::tap::Budgets;

fn dataset() -> Table {
    enedis_like(Scale::TEST, 13)
}

fn base_config() -> GeneratorConfig {
    GeneratorConfig {
        budgets: Budgets { epsilon_t: 5.0, epsilon_d: 35.0 },
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig { n_permutations: 99, seed: 5, ..Default::default() },
            ..Default::default()
        },
        n_threads: 2,
        ..Default::default()
    }
}

/// Every externally observable field of a [`RunResult`], compared at the
/// bit level — the warm-start contract.
fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(to_markdown(&a.notebook), to_markdown(&b.notebook), "{label}: notebook");
    assert_eq!(a.solution.sequence, b.solution.sequence, "{label}: TAP sequence");
    assert_eq!(
        a.solution.total_interest.to_bits(),
        b.solution.total_interest.to_bits(),
        "{label}: total interest"
    );
    assert_eq!(a.solution.total_cost.to_bits(), b.solution.total_cost.to_bits(), "{label}");
    assert_eq!(a.solution.total_distance.to_bits(), b.solution.total_distance.to_bits(), "{label}");
    assert_eq!(a.n_tested, b.n_tested, "{label}: n_tested");
    assert_eq!(a.n_significant, b.n_significant, "{label}: n_significant");
    assert_eq!(a.n_queries_before_dedup, b.n_queries_before_dedup, "{label}");
    assert_eq!(a.tap_timed_out, b.tap_timed_out, "{label}");
    assert_eq!(a.queries.len(), b.queries.len(), "{label}: query count");
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        assert_eq!(qa.spec, qb.spec, "{label}: query spec");
        assert_eq!(qa.insight_ids, qb.insight_ids, "{label}");
        assert_eq!((qa.theta, qa.gamma), (qb.theta, qb.gamma), "{label}");
    }
    for (ia, ib) in a.interests.iter().zip(&b.interests) {
        assert_eq!(ia.to_bits(), ib.to_bits(), "{label}: interest score");
    }
    assert_eq!(a.insights.len(), b.insights.len(), "{label}: insight count");
    for (sa, sb) in a.insights.iter().zip(&b.insights) {
        assert_eq!(sa.detail.insight, sb.detail.insight, "{label}");
        assert_eq!(sa.detail.p_value.to_bits(), sb.detail.p_value.to_bits(), "{label}");
        assert_eq!(sa.detail.raw_p.to_bits(), sb.detail.raw_p.to_bits(), "{label}");
        assert_eq!(
            sa.detail.observed_effect.to_bits(),
            sb.detail.observed_effect.to_bits(),
            "{label}"
        );
        assert_eq!(sa.credibility.supporting, sb.credibility.supporting, "{label}");
        assert_eq!(sa.credibility.possible, sb.credibility.possible, "{label}");
    }
}

#[test]
fn warm_start_is_bit_identical_across_prefix_variants() {
    let t = dataset();
    let mut variants: Vec<(&str, GeneratorConfig)> = Vec::new();
    variants.push(("full-table", base_config()));
    let mut c = base_config();
    c.sampling = SamplingStrategy::Random { fraction: 0.6 };
    variants.push(("random-sample", c));
    let mut c = base_config();
    c.sampling = SamplingStrategy::Unbalanced { fraction: 0.6 };
    variants.push(("unbalanced-sample", c));
    let mut c = base_config();
    c.generation_config.prune_transitive = false;
    variants.push(("prune-off", c));
    let mut c = base_config();
    c.detect_fds = false;
    variants.push(("no-fd", c));

    for (label, cfg) in &variants {
        let artifact = build_store_artifact(&t, cfg, "enedis").expect("build");
        let cold = run(&t, cfg).expect("cold run");
        let warm = run_from_store(&t, &artifact, cfg).expect("warm run");
        assert_identical(&cold, &warm, label);
    }
}

#[test]
fn warm_start_is_identical_after_a_disk_round_trip() {
    let t = dataset();
    let cfg = base_config();
    let artifact = build_store_artifact(&t, &cfg, "enedis").unwrap();

    let dir = std::env::temp_dir().join(format!("cn-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    store.save(&artifact).unwrap();
    let loaded = store.load("enedis").unwrap();
    assert_eq!(loaded, artifact);

    let cold = run(&t, &cfg).unwrap();
    let warm = run_from_store(&t, &loaded, &cfg).unwrap();
    assert_identical(&cold, &warm, "disk-round-trip");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_serves_requests_that_vary_only_suffix_config() {
    let t = dataset();
    let build_cfg = base_config();
    let artifact = build_store_artifact(&t, &build_cfg, "enedis").unwrap();

    // Tighter budgets, more threads, an extra request-side exclusion:
    // none of these touch Phases 0–2, so the same artifact must serve
    // them — and still match the cold run bit for bit.
    let mut request = base_config();
    request.budgets = Budgets { epsilon_t: 3.0, epsilon_d: 20.0 };
    request.n_threads = 4;
    request.generation_config.excluded_pairs.push((AttrId(0), AttrId(1)));
    assert_eq!(
        prefix_fingerprint(&t, &build_cfg),
        prefix_fingerprint(&t, &request),
        "suffix-only changes must not move the fingerprint"
    );
    let cold = run(&t, &request).unwrap();
    let warm = run_from_store(&t, &artifact, &request).unwrap();
    assert_identical(&cold, &warm, "suffix-variation");
}

#[test]
fn fingerprint_moves_with_every_prefix_field() {
    let t = dataset();
    let base = prefix_fingerprint(&t, &base_config());

    let mut c = base_config();
    c.seed = 6;
    assert_ne!(base, prefix_fingerprint(&t, &c), "pipeline seed");
    let mut c = base_config();
    c.generation_config.test.n_permutations = 100;
    assert_ne!(base, prefix_fingerprint(&t, &c), "permutation count");
    let mut c = base_config();
    c.generation_config.test.alpha = 0.01;
    assert_ne!(base, prefix_fingerprint(&t, &c), "alpha");
    let mut c = base_config();
    c.generation_config.test.apply_bh = false;
    assert_ne!(base, prefix_fingerprint(&t, &c), "BH toggle");
    let mut c = base_config();
    c.generation_config.test.seed = 99;
    assert_ne!(base, prefix_fingerprint(&t, &c), "test seed");
    let mut c = base_config();
    c.sampling = SamplingStrategy::Random { fraction: 0.5 };
    assert_ne!(base, prefix_fingerprint(&t, &c), "sampling strategy");
    let mut c = base_config();
    c.detect_fds = false;
    assert_ne!(base, prefix_fingerprint(&t, &c), "FD detection toggle");

    // And with the table contents.
    let other = enedis_like(Scale::TEST, 14);
    assert_ne!(base, prefix_fingerprint(&other, &base_config()), "table contents");
}

#[test]
fn mismatched_artifact_is_a_typed_error_not_a_wrong_answer() {
    let t = dataset();
    let artifact = build_store_artifact(&t, &base_config(), "enedis").unwrap();
    let mut other = base_config();
    other.generation_config.test.n_permutations = 42;
    let err = run_from_store(&t, &artifact, &other).unwrap_err();
    assert!(matches!(err, PipelineError::Artifact(_)), "got {err:?}");
    assert!(err.to_string().contains("fingerprint"));
}
