//! Cross-validation of the TAP solvers: the branch-and-bound must match
//! brute force on every feasible tiny instance, dominate Algorithm 3, and
//! the quality metrics must behave like Tables 5–6 on mid-size instances.

use cn_core::tap::baseline::solve_baseline;
use cn_core::tap::eval::{deviation_percent, recall};
use cn_core::tap::exact::solve_brute_force;
use cn_core::tap::problem::is_feasible;
use cn_core::tap::{
    generate_instance, solve_exact, solve_heuristic, Budgets, ExactConfig, InstanceConfig,
};
use std::time::Duration;

#[test]
fn exact_equals_brute_force_across_seeds_and_budgets() {
    for seed in 0..12 {
        let p = generate_instance(&InstanceConfig::new(11, 1000 + seed));
        for (t, d) in [(4.0, 0.6), (6.0, 1.2), (9.0, 2.5)] {
            let b = Budgets { epsilon_t: t, epsilon_d: d };
            let exact = solve_exact(&p, &b, &ExactConfig::default());
            assert!(!exact.timed_out);
            let brute = solve_brute_force(&p, &b);
            assert!(
                (exact.solution.total_interest - brute.total_interest).abs() < 1e-9,
                "seed {seed} ({t}, {d}): {} vs {}",
                exact.solution.total_interest,
                brute.total_interest
            );
            assert!(is_feasible(&p, &exact.solution.sequence, &b));
        }
    }
}

#[test]
fn heuristic_never_beats_exact_and_stays_feasible() {
    for seed in 0..6 {
        let p = generate_instance(&InstanceConfig::new(60, 2000 + seed));
        let b = Budgets { epsilon_t: 10.0, epsilon_d: 1.5 };
        let exact = solve_exact(
            &p,
            &b,
            &ExactConfig { timeout: Duration::from_secs(30), ..Default::default() },
        );
        let heur = solve_heuristic(&p, &b);
        assert!(is_feasible(&p, &heur.sequence, &b));
        if !exact.timed_out {
            assert!(exact.solution.total_interest >= heur.total_interest - 1e-9);
            let dev = deviation_percent(&exact.solution, &heur);
            assert!((0.0..=100.0).contains(&dev));
        }
    }
}

#[test]
fn heuristic_recall_vs_baseline_in_the_table6_regime() {
    // The Table 6 comparison: Algorithm 3's recall of the optimal solution
    // vs the distance-blind top-k baseline's. On our *metric* instances
    // the gap is much smaller than the paper's 2.5–3× (see EXPERIMENTS.md:
    // with a metric, every subset is somewhat connectable, so the optimum
    // stays partially interest-correlated and the baseline overlaps it
    // more) — but in the calibrated regime the heuristic still edges it
    // out, it respects ε_d (the baseline does not), and both recalls are
    // proper fractions. Seeds are fixed, so the comparison is exact.
    let b = Budgets { epsilon_t: 10.0, epsilon_d: 0.8 };
    let mut heur_recall = 0.0;
    let mut base_recall = 0.0;
    let mut n = 0;
    for seed in 0..6 {
        let p = generate_instance(&InstanceConfig::euclidean(100, 700 + seed));
        let exact = solve_exact(
            &p,
            &b,
            &ExactConfig { timeout: Duration::from_secs(60), ..Default::default() },
        );
        if exact.timed_out {
            continue;
        }
        let heur = solve_heuristic(&p, &b);
        assert!(heur.total_distance <= b.epsilon_d + 1e-9);
        let hr = recall(&exact.solution, &heur);
        let br = recall(&exact.solution, &solve_baseline(&p, &b));
        assert!((0.0..=1.0).contains(&hr) && (0.0..=1.0).contains(&br));
        heur_recall += hr;
        base_recall += br;
        n += 1;
    }
    assert!(n >= 4, "enough instances solved exactly");
    assert!(heur_recall > 0.0, "heuristic must overlap the optimum somewhere");
    assert!(
        heur_recall >= base_recall,
        "Algorithm 3 recall {heur_recall:.2} vs baseline {base_recall:.2} over {n} instances"
    );
}

#[test]
fn exact_timeout_degrades_gracefully() {
    let p = generate_instance(&InstanceConfig::new(400, 9));
    let b = Budgets { epsilon_t: 25.0, epsilon_d: 2.0 };
    let r = solve_exact(
        &p,
        &b,
        &ExactConfig { timeout: Duration::from_millis(50), ..Default::default() },
    );
    assert!(r.timed_out);
    // Warm start guarantees at least the heuristic value.
    let heur = solve_heuristic(&p, &b);
    assert!(r.solution.total_interest >= heur.total_interest - 1e-9);
    assert!(is_feasible(&p, &r.solution.sequence, &b));
}

#[test]
fn deviation_shrinks_with_instance_size() {
    // The Table 5 trend: with more queries to choose from, the greedy
    // heuristic loses less. Compare a small and a large instance class.
    let b = Budgets { epsilon_t: 10.0, epsilon_d: 0.8 };
    let avg_dev = |n: usize, seeds: std::ops::Range<u64>| {
        let mut total = 0.0;
        let mut count = 0;
        for seed in seeds {
            let p = generate_instance(&InstanceConfig::euclidean(n, 4000 + seed));
            let exact = solve_exact(
                &p,
                &b,
                &ExactConfig { timeout: Duration::from_secs(20), ..Default::default() },
            );
            if exact.timed_out {
                continue;
            }
            total += deviation_percent(&exact.solution, &solve_heuristic(&p, &b));
            count += 1;
        }
        (total / count.max(1) as f64, count)
    };
    let (dev_small, n_small) = avg_dev(25, 0..8);
    let (dev_large, n_large) = avg_dev(120, 0..8);
    assert!(n_small >= 4 && n_large >= 4);
    // Tolerance: the trend is statistical; with 8 seeds we only assert it
    // does not reverse dramatically.
    assert!(
        dev_large <= dev_small + 5.0,
        "deviation should not grow with size: {dev_small:.2}% -> {dev_large:.2}%"
    );
    assert!((0.0..=100.0).contains(&dev_small) && (0.0..=100.0).contains(&dev_large));
}
