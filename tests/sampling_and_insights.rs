//! Sampling-vs-recovery integration tests (the Figure 6/9 mechanics) plus
//! end-to-end statistical sanity.

use cn_core::datagen::{enedis_like, Scale};
use cn_core::insight::significance::TestConfig;
use cn_core::prelude::*;
use cn_core::tabular::sampling::{random_sample, unbalanced_sample};

fn config(sampling: SamplingStrategy, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        sampling,
        generation_config: cn_core::insight::generation::GenerationConfig {
            test: TestConfig { n_permutations: 199, seed, ..Default::default() },
            ..Default::default()
        },
        n_threads: 4,
        ..Default::default()
    }
}

#[test]
fn unbalanced_sampling_keeps_minority_values_visible() {
    let t = enedis_like(Scale { rows: 0.05, domains: 0.1 }, 17);
    // `city` is zipf-skewed: at 10%, uniform sampling loses tail values,
    // the water-filling strategy keeps them.
    let city = t.schema().attribute("city").unwrap();
    let full_dom = t.active_domain_size(city);
    let rnd = random_sample(&t, 0.05, 3);
    let unb = unbalanced_sample(&t, city, 0.05, 3);
    assert!(unb.active_domain_size(city) >= rnd.active_domain_size(city));
    assert_eq!(unb.active_domain_size(city), full_dom);
}

#[test]
fn sampled_runs_recover_most_reference_insights() {
    let t = enedis_like(Scale::TEST, 23);
    let reference =
        run(&t, &config(SamplingStrategy::None, 5)).expect("pipeline run").insight_keys();
    assert!(!reference.is_empty());
    for (strategy, min_frac) in [
        (SamplingStrategy::Unbalanced { fraction: 0.6 }, 0.5),
        (SamplingStrategy::Random { fraction: 0.6 }, 0.4),
    ] {
        let found = run(&t, &config(strategy, 5)).expect("pipeline run").insight_keys();
        let overlap = found.intersection(&reference).count() as f64;
        assert!(
            overlap >= min_frac * reference.len() as f64,
            "{strategy:?}: {overlap}/{} recovered",
            reference.len()
        );
    }
}

#[test]
fn aggressive_sampling_can_produce_spurious_insights() {
    // The Figure 9 phenomenon: insights found on a small sample that do not
    // exist on the full data. We only check the *mechanism*: the sampled
    // insight set is not necessarily a subset of the reference.
    let t = enedis_like(Scale::TEST, 29);
    let reference =
        run(&t, &config(SamplingStrategy::None, 7)).expect("pipeline run").insight_keys();
    let sampled = run(&t, &config(SamplingStrategy::Random { fraction: 0.1 }, 7))
        .expect("pipeline run")
        .insight_keys();
    // Ratio reported by the Figure 9 harness:
    let ratio = sampled.len() as f64 / reference.len().max(1) as f64;
    assert!(ratio.is_finite());
}

#[test]
fn significance_threshold_is_respected() {
    let t = enedis_like(Scale::TEST, 31);
    let r = run(&t, &config(SamplingStrategy::None, 9)).expect("pipeline run");
    for s in &r.insights {
        assert!(
            s.detail.significance() >= 0.95 - 1e-9,
            "retained insight below the paper's sig threshold: {:?}",
            s.detail
        );
        assert!(s.credibility.supporting >= 1, "zero-support insights must be dropped");
        assert!(s.credibility.supporting <= s.credibility.possible);
    }
}

#[test]
fn transitivity_pruning_reduces_or_keeps_insights() {
    let t = enedis_like(Scale::TEST, 37);
    let with_pruning = run(&t, &config(SamplingStrategy::None, 11)).expect("pipeline run");
    let mut cfg = config(SamplingStrategy::None, 11);
    cfg.generation_config.prune_transitive = false;
    let without = run(&t, &cfg).expect("pipeline run");
    assert!(with_pruning.n_significant <= without.n_significant);
    // Pruned runs still produce a notebook.
    assert!(!with_pruning.notebook.is_empty());
}
