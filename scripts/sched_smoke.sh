#!/usr/bin/env bash
# Smoke test of the cn-sched multi-tenant scheduler in cn-serve: one
# tenant saturates the single pipeline worker with batch jobs while a
# trickle tenant submits one interactive request — the trickle request
# must complete, and the scheduler counters must land in /metrics and
# the /v1/sched snapshot.
set -euo pipefail

PORT="${PORT:-7980}"
BASE="http://127.0.0.1:${PORT}"
POLICY="${POLICY:-/tmp/cn_sched_smoke_policy.toml}"
METRICS_OUT="${METRICS_OUT:-sched-metrics.json}"

# SKIP_BUILD=1 reuses an existing release binary (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-core --bin cn
fi

cat >"${POLICY}" <<'EOF'
# Two equal-weight tenants; generous per-tenant backlog.
[defaults]
max_queued = 32

[tenants.batchy]
weight = 1

[tenants.trickle]
weight = 1
EOF

# One pipeline worker so the saturating tenant genuinely occupies it.
./target/release/cn serve \
  --port "${PORT}" \
  --dataset covid=data/covid_sample.csv \
  --serve-workers 1 --threads 2 \
  --sched-config "${POLICY}" &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/healthz"
echo

# Tenant `batchy` floods the worker with slow batch-class jobs. Distinct
# seeds keep the jobs from coalescing into one run.
BATCH_PIDS=""
for i in $(seq 1 5); do
  curl -s -o "/tmp/cn_sched_b${i}" \
    -X POST "${BASE}/v1/notebooks" \
    -H 'X-CN-Tenant: batchy' \
    -d "{\"dataset\": \"covid\", \"len\": 3, \"perms\": 5000, \"seed\": ${i}, \"class\": \"batch\"}" &
  BATCH_PIDS="${BATCH_PIDS} $!"
done

# Give the flood time to occupy the worker and build a backlog.
for _ in $(seq 1 50); do
  QUEUED=$(curl -sf "${BASE}/v1/sched" | sed -n 's/.*"queued": *\([0-9]*\).*/\1/p' | head -n1)
  if [ "${QUEUED:-0}" -ge 2 ]; then break; fi
  sleep 0.2
done
[ "${QUEUED:-0}" -ge 2 ] || { echo "batch tenant never built a backlog"; exit 1; }

# The trickle tenant's interactive request completes despite the flood:
# interactive dispatches ahead of every queued batch job.
TRICKLE=$(curl -sf -X POST "${BASE}/v1/notebooks" \
  -H 'X-CN-Tenant: trickle' \
  -d '{"dataset": "covid", "len": 2, "perms": 50, "seed": 99}')
echo "${TRICKLE}" | grep -q '"status": *"done"'

# The snapshot names both tenants and bills the trickle dispatch.
SNAP=$(curl -sf "${BASE}/v1/sched")
echo "${SNAP}" | grep -q '"enabled": *true'
echo "${SNAP}" | grep -q '"name": *"batchy"'
echo "${SNAP}" | grep -q '"name": *"trickle"'

# Let the flood drain so the totals below are stable.
wait ${BATCH_PIDS}
for i in $(seq 1 5); do
  grep -q '"status": *"done"' "/tmp/cn_sched_b${i}"
done

# The scheduler counters and gauges land in /metrics.
curl -sf "${BASE}/metrics" >"${METRICS_OUT}"
grep -q '"sched_dispatched": *6' "${METRICS_OUT}"
grep -q '"sched_shed_expired": *0' "${METRICS_OUT}"
grep -q '"sched_coalesced": *0' "${METRICS_OUT}"
grep -q '"sched_rejected_rate": *0' "${METRICS_OUT}"
grep -q '"queue_depth": *0' "${METRICS_OUT}"
grep -q '"sched_wait_us_interactive"' "${METRICS_OUT}"
grep -q '"sched_wait_us_batch"' "${METRICS_OUT}"

echo "sched smoke passed"
