#!/usr/bin/env bash
# Smoke test of the cn-lint invariant checker: the workspace must lint
# clean against its checked-in baseline, the JSON report must conform
# to schemas/lint.schema.json, and the exit-code contract must hold
# (0 when clean, 1 when a new violation appears).
set -euo pipefail

REPORT_OUT="${REPORT_OUT:-lint-report.json}"

# SKIP_BUILD=1 reuses an existing release binary (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-core --bin cn
fi
CN="${CN:-./target/release/cn}"

# The workspace lints clean against its own baseline (exit 0).
"${CN}" lint .

# The JSON report is parseable and carries the pinned shape markers.
"${CN}" lint . --json >"${REPORT_OUT}"
grep -q '"tool": "cn-lint"' "${REPORT_OUT}"
grep -q '"version": 1' "${REPORT_OUT}"
grep -q '"summary": {"total": ' "${REPORT_OUT}"
grep -q '"new": 0' "${REPORT_OUT}"

# Schema conformance and the golden fixture report are enforced by the
# cn-lint integration tests; run just those (fast — no heavy crates).
cargo test -q -p cn-lint

# Exit-code contract: a seeded violation must fail the lint with 1.
SEEDED_DIR=$(mktemp -d)
trap 'rm -rf "${SEEDED_DIR}"' EXIT
mkdir -p "${SEEDED_DIR}/crates/engine/src"
cat >"${SEEDED_DIR}/crates/engine/src/lib.rs" <<'EOF'
pub fn t() -> std::time::Instant { std::time::Instant::now() }
EOF
if "${CN}" lint "${SEEDED_DIR}" >/dev/null 2>&1; then
  echo "seeded violation did not fail the lint"
  exit 1
fi

# An explicitly-missing baseline file is a hard error (exit 2), not a
# silent empty baseline.
if "${CN}" lint . --baseline /nonexistent-baseline.json >/dev/null 2>&1; then
  echo "missing explicit baseline did not error"
  exit 1
fi

echo "lint smoke passed"
