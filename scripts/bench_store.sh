#!/usr/bin/env bash
# Cold-vs-warm benchmark of the precomputed-insight store. Writes
# BENCH_store.json at the repository root; exits non-zero when the warm
# path is less than 5x faster than cold (the acceptance bar).
set -euo pipefail

OUT="${OUT:-BENCH_store.json}"

# SKIP_BUILD=1 reuses an existing release binary (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-bench --bin bench_store
fi

./target/release/bench_store --out "${OUT}" "$@"
