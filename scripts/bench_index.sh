#!/usr/bin/env bash
# Similarity-index benchmark: insert + top-k search throughput, CNIDX
# save/load, and the determinism assertions (thread-count invariance,
# save/load invariance). Writes BENCH_index.json at the repository root.
set -euo pipefail

OUT="${OUT:-BENCH_index.json}"

# SKIP_BUILD=1 reuses an existing release binary (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-bench --bin bench_index
fi

# SMALL=1 runs the CI-sized corpus.
if [ -n "${SMALL:-}" ]; then
  set -- --small "$@"
fi

./target/release/bench_index --out "${OUT}" "$@"
