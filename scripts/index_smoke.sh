#!/usr/bin/env bash
# Smoke test of the similarity index, end to end: start cn-serve with
# an index, generate notebooks, watch the background indexer register
# them, search the corpus (twice — the ranking must not move), fetch
# similar notebooks, run a retrieval-biased continuation, check the
# index counters in /metrics, and drive the same corpus from the
# `cn index` CLI.
set -euo pipefail

PORT="${PORT:-7989}"
BASE="http://127.0.0.1:${PORT}"
INDEX_DIR="$(mktemp -d)"
INDEX="${INDEX_DIR}/notebooks.cnidx"
trap 'rm -rf "${INDEX_DIR}"' EXIT

# SKIP_BUILD=1 reuses an existing release binary (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-core --bin cn
fi

./target/release/cn serve \
  --port "${PORT}" \
  --dataset covid=data/covid_sample.csv \
  --index-path "${INDEX}" \
  --queue-depth 8 --serve-workers 2 --threads 2 &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true; rm -rf "${INDEX_DIR}"' EXIT

for _ in $(seq 1 50); do
  if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/healthz" | grep -q '"ok"'

# Before anything is indexed, search answers with an empty hit list —
# and with the index enabled it is a 200, not a 404.
curl -sf "${BASE}/v1/search?q=cases" | grep -q '"hits": *\[\]'

# Two different notebooks; the background indexer registers both.
R1=$(curl -sf -X POST "${BASE}/v1/notebooks" \
  -d '{"dataset": "covid", "len": 4, "perms": 99, "seed": 7}')
echo "${R1}" | grep -q '"status": *"done"'
ID=$(echo "${R1}" | sed -n 's/.*"id": *\([0-9]*\).*/\1/p')
curl -sf -X POST "${BASE}/v1/notebooks" \
  -d '{"dataset": "covid", "len": 3, "perms": 99, "seed": 11}' >/dev/null

for _ in $(seq 1 50); do
  if curl -sf "${BASE}/metrics" | grep -q '"index_docs": *2'; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/metrics" | grep -q '"index_docs": *2'
[ -f "${INDEX}" ] || { echo "indexer never persisted ${INDEX}"; exit 1; }

# Deterministic search: the same query twice returns the same hits.
S1=$(curl -sf "${BASE}/v1/search?q=measure%3Acases&k=5")
S2=$(curl -sf "${BASE}/v1/search?q=measure%3Acases&k=5")
echo "${S1}" | grep -q '"hits": *\[ *{'
[ "$(echo "${S1}" | sed 's/"request_id": *[0-9]*//')" = \
  "$(echo "${S2}" | sed 's/"request_id": *[0-9]*//')" ] \
  || { echo "search ranking moved between identical queries"; exit 1; }

# Similar notebooks for a finished job; bad parameters are typed 400s.
curl -sf "${BASE}/v1/notebooks/${ID}/similar?k=3" | grep -q '"anchor"'
STATUS=$(curl -s -o /tmp/cn_index_400.json -w '%{http_code}' "${BASE}/v1/search?k=5")
[ "${STATUS}" = "400" ]
grep -q '"code": *"bad_request"' /tmp/cn_index_400.json

# The opt-in retrieval-biased continuation carries evidence scores.
curl -sf -X POST "${BASE}/v1/sessions/${ID}/continue" \
  -d '{"anchor": 0, "k": 2, "use_index": true}' | grep -q '"evidence"'

# Index counters landed in /metrics.
curl -sf "${BASE}/metrics" >/tmp/cn_index_metrics.json
grep -q '"index_searches": *[1-9]' /tmp/cn_index_metrics.json
grep -q '"index_hits": *[1-9]' /tmp/cn_index_metrics.json
grep -q '"index_search_us"' /tmp/cn_index_metrics.json

kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true

# --- CLI flow over its own corpus --------------------------------------
CLI_INDEX="${INDEX_DIR}/cli.cnidx"
./target/release/cn index build --index-path "${CLI_INDEX}" \
  --demo-data --len 4 --perms 99 --threads 2 --seed 3
./target/release/cn index inspect --index-path "${CLI_INDEX}" | grep -q '1 documents'
# Rebuilding dedups instead of duplicating.
./target/release/cn index build --index-path "${CLI_INDEX}" \
  --demo-data --len 4 --perms 99 --threads 2 --seed 3 2>&1 | grep -q 'already indexed'
./target/release/cn index search --index-path "${CLI_INDEX}" \
  --query "group:city measure:consumption_kwh" --k 3 | grep -q 'demo'

echo "index smoke passed"
