#!/usr/bin/env bash
# Smoke test of the warm-start store: precompute an artifact for the
# demo dataset with the CLI, verify it, serve with the store attached,
# and assert that a served request actually warm-started (a `store_hits`
# count in a schema-valid /metrics report).
set -euo pipefail

PORT="${PORT:-7981}"
BASE="http://127.0.0.1:${PORT}"
STORE_DIR="${STORE_DIR:-target/store-smoke}"
METRICS_OUT="${METRICS_OUT:-store-metrics.json}"

# SKIP_BUILD=1 reuses existing release binaries (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-core --bin cn
  cargo build --release -p cn-bench --bin repro
fi

rm -rf "${STORE_DIR}"

# Build + verify the artifact offline. The defaults (seed 0, 200
# permutations) are exactly what the server derives for a request that
# sets neither `seed` nor `perms`.
./target/release/cn store build --store-dir "${STORE_DIR}" --demo-data
./target/release/cn store verify --store-dir "${STORE_DIR}" --demo-data
./target/release/cn store inspect --store-dir "${STORE_DIR}" | grep -q '^demo:'

./target/release/cn serve \
  --port "${PORT}" --demo-data --store-dir "${STORE_DIR}" \
  --queue-depth 8 --serve-workers 2 --threads 2 &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/healthz"
echo

# The startup scan adopts the CLI-built artifact: demo reports warm.
for _ in $(seq 1 50); do
  if curl -sf "${BASE}/v1/datasets" | grep -q '"store": *"warm"'; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/v1/datasets" | grep -q '"store": *"warm"'
curl -sf "${BASE}/v1/datasets" | grep -q '"fingerprint": *"[0-9a-f]\{32\}"'

# A default request warm-starts from the artifact.
RESPONSE=$(curl -sf -X POST "${BASE}/v1/notebooks" \
  -H 'Content-Type: application/json' \
  -d '{"dataset": "demo", "len": 4}')
echo "${RESPONSE}" | grep -q '"status": *"done"'

curl -sf "${BASE}/metrics" >"${METRICS_OUT}"
grep -q '"store_hits": *1' "${METRICS_OUT}"
grep -q '"store_misses": *0' "${METRICS_OUT}"
grep -q '"store_invalid": *0' "${METRICS_OUT}"

./target/release/repro validate-metrics "${METRICS_OUT}" \
  --schema schemas/metrics.schema.json
echo "store smoke passed"
