#!/usr/bin/env bash
# Smoke test of the cn-serve HTTP service against the bundled demo CSV:
# start the server, generate a notebook, continue the session, pull
# /metrics, validate the report against the checked-in schema, and
# check that failures answer with the versioned error envelope.
set -euo pipefail

PORT="${PORT:-7979}"
BASE="http://127.0.0.1:${PORT}"
METRICS_OUT="${METRICS_OUT:-serve-metrics.json}"

# SKIP_BUILD=1 reuses existing release binaries (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-core --bin cn
  cargo build --release -p cn-bench --bin repro
fi

# One pipeline worker and a shallow queue so the load-shedding burst at
# the end overflows deterministically; the sequential requests before it
# never queue more than one job.
./target/release/cn serve \
  --port "${PORT}" \
  --dataset covid=data/covid_sample.csv \
  --queue-depth 2 --serve-workers 1 --threads 2 &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/healthz"
echo

curl -sf "${BASE}/v1/datasets" | grep -q '"covid"'

# Generate a notebook (the body mirrors examples/serve_request.json).
RESPONSE=$(curl -sf -X POST "${BASE}/v1/notebooks" \
  -H 'Content-Type: application/json' \
  -d '{"dataset": "covid", "len": 4, "perms": 99, "seed": 7}')
echo "${RESPONSE}" | grep -q '"status": *"done"'
ID=$(echo "${RESPONSE}" | sed -n 's/.*"id": *\([0-9]*\).*/\1/p')

# The finished job is retrievable and serves continuations.
curl -sf "${BASE}/v1/notebooks/${ID}" | grep -q '"done"'
curl -sf -X POST "${BASE}/v1/sessions/${ID}/continue" \
  -d '{"anchor": 0, "k": 2}' | grep -q '"suggestions"'

# A second request must hit the warm catalog (no CSV re-parse) and —
# sharing the first request's seed, hence its group-by pairs — serve
# every dense cube from the shared group-by cache (no table re-scan).
curl -sf -X POST "${BASE}/v1/notebooks" \
  -d '{"dataset": "covid", "len": 3, "perms": 99, "seed": 7}' >/dev/null
curl -sf "${BASE}/metrics" >"${METRICS_OUT}"
grep -q '"catalog_hits": *1' "${METRICS_OUT}"
grep -q '"catalog_misses": *1' "${METRICS_OUT}"
grep -q '"groupby_cache_hits": *[1-9]' "${METRICS_OUT}"

./target/release/repro validate-metrics "${METRICS_OUT}" \
  --schema schemas/metrics.schema.json

# --- failure envelopes -------------------------------------------------
# Every 4xx/5xx answers with the versioned envelope
# (schemas/api_error.schema.json): machine code + retryability +
# request id. First: an unknown dataset is a 404 dataset_not_found.
STATUS=$(curl -s -o /tmp/cn_smoke_404.json -w '%{http_code}' \
  -X POST "${BASE}/v1/notebooks" -d '{"dataset": "nope"}')
[ "${STATUS}" = "404" ]
grep -q '"api_version": *1' /tmp/cn_smoke_404.json
grep -q '"code": *"dataset_not_found"' /tmp/cn_smoke_404.json
grep -q '"request_id": *[1-9]' /tmp/cn_smoke_404.json

# Then: a burst of slow jobs against the single worker and depth-2
# queue must shed at least one request with 429 queue_full and a
# Retry-After header.
BURST_PIDS=""
for i in $(seq 1 6); do
  curl -s -D "/tmp/cn_smoke_h${i}" -o "/tmp/cn_smoke_b${i}" \
    -X POST "${BASE}/v1/notebooks" \
    -d '{"dataset": "covid", "len": 2, "perms": 20000}' &
  BURST_PIDS="${BURST_PIDS} $!"
done
# Wait for the burst curls only — a bare `wait` would also wait on the
# background server, which never exits on its own.
wait ${BURST_PIDS}
SHED=""
for i in $(seq 1 6); do
  if grep -q '^HTTP/1.1 429' "/tmp/cn_smoke_h${i}"; then SHED="${i}"; break; fi
done
[ -n "${SHED}" ] || { echo "burst never overflowed admission"; exit 1; }
grep -qi '^Retry-After: *1' "/tmp/cn_smoke_h${SHED}"
grep -q '"code": *"queue_full"' "/tmp/cn_smoke_b${SHED}"
grep -q '"retryable": *true' "/tmp/cn_smoke_b${SHED}"

echo "serve smoke passed"
