#!/usr/bin/env bash
# Smoke test of the cn-serve HTTP service against the bundled demo CSV:
# start the server, generate a notebook, continue the session, pull
# /metrics, and validate the report against the checked-in schema.
set -euo pipefail

PORT="${PORT:-7979}"
BASE="http://127.0.0.1:${PORT}"
METRICS_OUT="${METRICS_OUT:-serve-metrics.json}"

# SKIP_BUILD=1 reuses existing release binaries (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-core --bin cn
  cargo build --release -p cn-bench --bin repro
fi

./target/release/cn serve \
  --port "${PORT}" \
  --dataset covid=data/covid_sample.csv \
  --queue-depth 8 --serve-workers 2 --threads 2 &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "${BASE}/healthz"
echo

curl -sf "${BASE}/v1/datasets" | grep -q '"covid"'

# Generate a notebook (the body mirrors examples/serve_request.json).
RESPONSE=$(curl -sf -X POST "${BASE}/v1/notebooks" \
  -H 'Content-Type: application/json' \
  -d '{"dataset": "covid", "len": 4, "perms": 99, "seed": 7}')
echo "${RESPONSE}" | grep -q '"status": *"done"'
ID=$(echo "${RESPONSE}" | sed -n 's/.*"id": *\([0-9]*\).*/\1/p')

# The finished job is retrievable and serves continuations.
curl -sf "${BASE}/v1/notebooks/${ID}" | grep -q '"done"'
curl -sf -X POST "${BASE}/v1/sessions/${ID}/continue" \
  -d '{"anchor": 0, "k": 2}' | grep -q '"suggestions"'

# A second request must hit the warm catalog (no CSV re-parse) and —
# sharing the first request's seed, hence its group-by pairs — serve
# every dense cube from the shared group-by cache (no table re-scan).
curl -sf -X POST "${BASE}/v1/notebooks" \
  -d '{"dataset": "covid", "len": 3, "perms": 99, "seed": 7}' >/dev/null
curl -sf "${BASE}/metrics" >"${METRICS_OUT}"
grep -q '"catalog_hits": *1' "${METRICS_OUT}"
grep -q '"catalog_misses": *1' "${METRICS_OUT}"
grep -q '"groupby_cache_hits": *[1-9]' "${METRICS_OUT}"

./target/release/repro validate-metrics "${METRICS_OUT}" \
  --schema schemas/metrics.schema.json
echo "serve smoke passed"
