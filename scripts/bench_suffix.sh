#!/usr/bin/env bash
# Warm query-evaluation suffix benchmark: the seed's WSC kernel vs the
# shared-scan dense kernel vs a cached repeat run, over one store
# artifact. Writes BENCH_suffix.json at the repository root; exits
# non-zero when the shared-scan kernel is less than 3x faster than WSC
# on the warm hypothesis_eval phase (the acceptance bar). SMALL=1 runs
# the TEST-scale preset without the bar (CI smoke).
set -euo pipefail

OUT="${OUT:-BENCH_suffix.json}"

# SKIP_BUILD=1 reuses an existing release binary (local runs).
if [ -z "${SKIP_BUILD:-}" ]; then
  cargo build --release -p cn-bench --bin bench_suffix
fi

ARGS=()
if [ -n "${SMALL:-}" ]; then
  ARGS+=(--small --runs 2 --perms 50)
fi

./target/release/bench_suffix --out "${OUT}" "${ARGS[@]}" "$@"
